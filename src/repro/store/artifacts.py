"""The versioned artifact store: save built indexes, load them safely.

Layout (one *key directory* per distinct index identity)::

    <root>/
      laesaindex-levenshtein-<digest16>/     key: class + distance +
        LOCK                                 params + corpus fingerprint
        v000001-9f2c1a/                      one immutable snapshot
          manifest.json                      written last; defines validity
          corpus_rows_x.npy  ...             payload, all ``.npy``
        v000002-03ab7e/                      a later save of the same key

The key digest covers ``(format version, class, distance identity,
normalised structure params, corpus fingerprint)`` -- any drift lands on
a *different* key, so a changed corpus is a clean miss, never a stale
hit.  Snapshots are immutable: a save builds a ``tmp-<pid>-<token>``
directory file by file (each through :mod:`repro.store.atomic`), writes
the manifest last, and renames the directory into its versioned name --
readers see finished snapshots or nothing.  Writers are serialized per
key by :class:`repro.store.lock.ArtifactLock`; loaders are lock-free
(they read immutable snapshots, newest first, falling back a version on
any verification failure).

:func:`load_or_build` is the graceful front door the index classes use:
a miss rebuilds silently; a corrupt store rebuilds *loudly* --
``DegradedExecutionWarning``, the ``store_load_failures`` counter, and
``index.last_degradation`` -- but never crashes and never serves a
result a cold rebuild would not.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import shutil
import uuid
import warnings
from pathlib import Path
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Type,
    TypeVar,
    Union,
    cast,
)

import numpy as np

from ..batch import faults
from ..batch.corpus import InternedCorpus, interning_enabled
from ..batch.runtime import DEGRADATION, DegradedExecutionWarning
from ..core.types import as_symbols
from ..tools import knobs
from .atomic import fsync_dir, write_array, write_text
from .errors import StoreError, StoreLoadError, StoreMiss
from .lock import ArtifactLock
from .manifest import (
    FORMAT_VERSION,
    MANIFEST_NAME,
    FileDigest,
    Manifest,
    ManifestError,
    sha256_file,
)

if TYPE_CHECKING:
    from ..index.base import NearestNeighborIndex

__all__ = [
    "ArtifactStore",
    "corpus_fingerprint",
    "distance_token",
    "load_or_build",
]

IndexT = TypeVar("IndexT", bound="NearestNeighborIndex[Any]")

StoreLike = Union["ArtifactStore", str, "os.PathLike[str]"]

#: Snapshot directory names: ``v<6-digit version>-<6-hex token>``.
_SNAPSHOT_RE = re.compile(r"^v(\d{6})-[0-9a-f]{6}$")

#: In-flight save directories: ``tmp-<pid>-<token>`` (reaped under the
#: key lock once their writer pid is dead, like orphaned shm segments).
_TMP_RE = re.compile(r"^tmp-(\d+)-[0-9a-f]{6}$")

#: Reserved payload names for the interned-corpus block; structure
#: arrays must not collide with them.
_CORPUS_FILES = ("corpus_rows_x", "corpus_rows_y", "corpus_lengths")


def distance_token(distance: Any) -> str:
    """A stable string identity for *distance* in keys and manifests.

    Registry names pass through (and registered callables reverse-map to
    their name, so ``"levenshtein"`` and the function it resolves to
    share artifacts); unregistered callables fall back to
    ``module:qualname`` -- stable across processes, which is all the key
    needs.
    """
    if isinstance(distance, str):
        return distance
    from ..core.registry import list_distances

    for spec in list_distances():
        if spec.function is distance:
            return spec.name
    module = getattr(distance, "__module__", None) or "<unknown>"
    qualname = (
        getattr(distance, "__qualname__", None)
        or getattr(distance, "__name__", None)
        or type(distance).__name__
    )
    return f"{module}:{qualname}"


def corpus_fingerprint(items: Sequence[Any]) -> str:
    """Hex SHA-256 over the *normalised* item sequences.

    Hashing :func:`~repro.core.types.as_symbols` output (not raw reprs)
    keeps the fingerprint aligned with what the indexes actually
    compare: ``"ab"`` and ``("a", "b")`` normalise identically, so they
    fingerprint identically too.  Items that cannot be normalised hash
    their ``repr`` -- same rule the scalar distance paths live by.
    """
    digest = hashlib.sha256()
    digest.update(b"repro-corpus-fingerprint-v1")
    for item in items:
        try:
            # tuple() canonicalises the container: as_symbols passes
            # strings through but tuples stay tuples, and the two must
            # fingerprint identically because every metric treats them
            # identically
            token = repr(tuple(as_symbols(item)))
        except TypeError:
            token = repr(item)
        data = token.encode("utf-8", "backslashreplace")
        digest.update(len(data).to_bytes(8, "little"))
        digest.update(data)
    return digest.hexdigest()


class ArtifactStore:
    """A directory of versioned, checksummed index snapshots."""

    def __init__(self, root: Optional[Union[str, "os.PathLike[str]"]] = None) -> None:
        if root is None:
            root = knobs.get_str("REPRO_STORE_DIR")
        if root is None:
            raise ValueError(
                "no artifact-store root: pass one or set REPRO_STORE_DIR"
            )
        self.root = Path(os.fspath(root))

    def __repr__(self) -> str:
        return f"ArtifactStore({str(self.root)!r})"

    @classmethod
    def coerce(cls, store: StoreLike) -> "ArtifactStore":
        """*store* itself when it already is one, else a store rooted at
        the given path."""
        if isinstance(store, ArtifactStore):
            return store
        return cls(store)

    # -- keys --------------------------------------------------------------

    def key_for(
        self,
        class_name: str,
        distance: str,
        params: Mapping[str, Any],
        fingerprint: str,
    ) -> str:
        """The key-directory name for one index identity."""
        payload = json.dumps(
            {
                "format_version": FORMAT_VERSION,
                "class": class_name,
                "distance": distance,
                "params": dict(params),
                "corpus_fingerprint": fingerprint,
            },
            sort_keys=True,
            separators=(",", ":"),
        )
        digest = hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]
        slug = re.sub(
            r"[^a-z0-9]+", "-", f"{class_name}-{distance}".lower()
        ).strip("-")[:48]
        return f"{slug}-{digest}"

    # -- saving ------------------------------------------------------------

    def save(self, index: "NearestNeighborIndex[Any]") -> Path:
        """Snapshot *index* into a new immutable version; returns its
        directory.  Serialized per key; prunes old versions down to
        ``REPRO_STORE_KEEP`` afterwards."""
        cls = type(index)
        params = index._artifact_params()
        dist = distance_token(index._counter._distance)
        fingerprint = corpus_fingerprint(index.items)
        arrays: Dict[str, np.ndarray] = {}
        if index._corpus is not None:
            block = index._corpus.block
            arrays["corpus_rows_x"] = block.rows_x
            arrays["corpus_rows_y"] = block.rows_y
            arrays["corpus_lengths"] = block.lengths
        for name, array in index._artifact_arrays().items():
            if name in _CORPUS_FILES:
                raise ValueError(f"structure array name {name!r} is reserved")
            arrays[name] = np.asarray(array)
        meta = dict(index._artifact_meta())
        meta["interned"] = index._corpus is not None

        key_dir = self.root / self.key_for(cls.__name__, dist, params, fingerprint)
        key_dir.mkdir(parents=True, exist_ok=True)
        with ArtifactLock(key_dir / "LOCK"):
            self._reap_dead_tmp(key_dir)
            version = self._next_version(key_dir)
            token = uuid.uuid4().hex[:6]
            tmp = key_dir / f"tmp-{os.getpid()}-{token}"
            tmp.mkdir()
            files: Dict[str, FileDigest] = {}
            for name, array in arrays.items():
                filename = f"{name}.npy"
                write_array(tmp / filename, array)
                files[filename] = FileDigest(
                    sha256=sha256_file(tmp / filename),
                    size=os.path.getsize(tmp / filename),
                )
            manifest = Manifest(
                format_version=FORMAT_VERSION,
                class_name=cls.__name__,
                distance=dist,
                params=dict(params),
                corpus_fingerprint=fingerprint,
                n_items=len(index.items),
                preprocessing_computations=index.preprocessing_computations,
                meta=meta,
                files=files,
            )
            text = manifest.to_json()
            if faults.fires("store_corrupt_manifest"):
                text = text[: len(text) // 2]  # a torn/corrupt manifest
            write_text(tmp / MANIFEST_NAME, text)
            final = key_dir / f"v{version:06d}-{token}"
            os.rename(tmp, final)
            fsync_dir(key_dir)
            self._prune(key_dir)
        return final

    def _reap_dead_tmp(self, key_dir: Path) -> None:
        """Remove ``tmp-<pid>-*`` debris whose writer pid is dead (the
        lock-file analogue of ``reap_orphaned_segments``; called under
        the key lock, so no live writer races us)."""
        from ..batch.runtime import _pid_alive

        for entry in key_dir.iterdir():
            match = _TMP_RE.match(entry.name)
            if match is None or not entry.is_dir():
                continue
            pid = int(match.group(1))
            if pid != os.getpid() and _pid_alive(pid):
                continue
            shutil.rmtree(entry, ignore_errors=True)

    def _versions(self, key_dir: Path) -> List[Tuple[int, Path]]:
        """Finished snapshots of *key_dir*, oldest first."""
        found: List[Tuple[int, Path]] = []
        try:
            entries = list(key_dir.iterdir())
        except OSError:
            return found
        for entry in entries:
            match = _SNAPSHOT_RE.match(entry.name)
            if match is not None and entry.is_dir():
                found.append((int(match.group(1)), entry))
        found.sort()
        return found

    def _next_version(self, key_dir: Path) -> int:
        versions = self._versions(key_dir)
        return versions[-1][0] + 1 if versions else 1

    def _prune(self, key_dir: Path) -> None:
        """Drop the oldest snapshots beyond ``REPRO_STORE_KEEP``.

        The manifest is unlinked *first* (atomically, via the directory
        entry) -- a concurrent loader then sees an invalid snapshot and
        falls back a version, never a half-deleted payload it trusts.
        """
        keep = knobs.get_int("REPRO_STORE_KEEP", default=2, minimum=1)
        keep = keep if keep is not None else 2
        versions = self._versions(key_dir)
        for _, snapshot in versions[: max(0, len(versions) - keep)]:
            try:
                (snapshot / MANIFEST_NAME).unlink()
            except FileNotFoundError:
                pass
            fsync_dir(snapshot)
            shutil.rmtree(snapshot, ignore_errors=True)

    # -- loading -----------------------------------------------------------

    def load(
        self,
        cls: Type[IndexT],
        items: Sequence[Any],
        distance: Any,
        params: Optional[Mapping[str, Any]] = None,
    ) -> IndexT:
        """Rebuild-free load of the newest valid snapshot for this
        identity.  Raises :class:`StoreMiss` when the key has no
        snapshots at all, :class:`StoreLoadError` when snapshots exist
        but none verifies."""
        raw_params = dict(params or {})
        key_params = cls._artifact_key_params(dict(raw_params))
        dist = distance_token(distance)
        fingerprint = corpus_fingerprint(items)
        key_dir = self.root / self.key_for(
            cls.__name__, dist, key_params, fingerprint
        )
        versions = self._versions(key_dir)
        if not versions:
            raise StoreMiss(f"no snapshot under {key_dir}")
        failures: List[str] = []
        for _, snapshot in reversed(versions):
            try:
                return self._load_snapshot(
                    cls, items, distance, key_params, raw_params, dist,
                    fingerprint, snapshot,
                )
            except Exception as exc:  # any failure: fall back a version
                failures.append(f"{snapshot.name}: {exc}")
        raise StoreLoadError(
            f"{len(failures)} snapshot(s) under {key_dir.name} failed "
            f"verification: {'; '.join(failures)}"
        )

    def _load_snapshot(
        self,
        cls: Type[IndexT],
        items: Sequence[Any],
        distance: Any,
        key_params: Dict[str, Any],
        raw_params: Dict[str, Any],
        dist: str,
        fingerprint: str,
        snapshot: Path,
    ) -> IndexT:
        try:
            text = (snapshot / MANIFEST_NAME).read_text(encoding="utf-8")
        except OSError as exc:
            raise StoreLoadError(f"unreadable manifest: {exc}") from exc
        try:
            manifest = Manifest.from_json(text)
        except ManifestError as exc:
            raise StoreLoadError(str(exc)) from exc
        self._verify_identity(manifest, cls.__name__, dist, key_params,
                              fingerprint, len(items))
        if knobs.get_flag("REPRO_STORE_VERIFY"):
            self._verify_checksums(snapshot, manifest)
        arrays: Dict[str, np.ndarray] = {}
        for filename in manifest.files:
            if not filename.endswith(".npy"):
                raise StoreLoadError(f"unexpected payload file {filename!r}")
            arrays[filename[: -len(".npy")]] = np.load(
                snapshot / filename, mmap_mode="r", allow_pickle=False
            )
        corpus: Optional[InternedCorpus] = None
        if all(name in arrays for name in _CORPUS_FILES) and interning_enabled():
            corpus = InternedCorpus.from_arrays(
                items,
                arrays["corpus_rows_x"],
                arrays["corpus_rows_y"],
                arrays["corpus_lengths"],
            )
        structure = {
            name: array
            for name, array in arrays.items()
            if name not in _CORPUS_FILES
        }
        index = cls._artifact_skeleton(items, distance, corpus)
        index._restore_artifact(structure, manifest.meta, raw_params)
        index.preprocessing_computations = manifest.preprocessing_computations
        return index

    @staticmethod
    def _verify_identity(
        manifest: Manifest,
        class_name: str,
        dist: str,
        key_params: Dict[str, Any],
        fingerprint: str,
        n_items: int,
    ) -> None:
        """Defence in depth: the key digest already encodes all of this,
        but a manifest that disagrees with its own directory means the
        store was tampered with or mis-copied -- reject it."""
        checks = (
            ("format_version", manifest.format_version, FORMAT_VERSION),
            ("class", manifest.class_name, class_name),
            ("distance", manifest.distance, dist),
            ("params", manifest.params, key_params),
            ("corpus_fingerprint", manifest.corpus_fingerprint, fingerprint),
            ("n_items", manifest.n_items, n_items),
        )
        for field, got, expected in checks:
            if got != expected:
                raise StoreLoadError(
                    f"manifest {field} mismatch: {got!r} != {expected!r}"
                )

    @staticmethod
    def _verify_checksums(snapshot: Path, manifest: Manifest) -> None:
        for filename, digest in manifest.files.items():
            path = snapshot / filename
            try:
                size = os.path.getsize(path)
            except OSError as exc:
                raise StoreLoadError(f"missing payload {filename!r}: {exc}")
            if size != digest.size:
                raise StoreLoadError(
                    f"payload {filename!r} is {size} bytes, "
                    f"manifest says {digest.size}"
                )
            actual = sha256_file(path)
            if actual != digest.sha256:
                raise StoreLoadError(
                    f"payload {filename!r} checksum mismatch "
                    f"({actual[:12]}... != {digest.sha256[:12]}...)"
                )


def load_or_build(
    cls: Type[IndexT],
    items: Sequence[Any],
    distance: Any,
    store: StoreLike,
    params: Optional[Mapping[str, Any]] = None,
    *,
    save_on_miss: bool = False,
) -> IndexT:
    """Load *cls* from *store*, or rebuild in process -- never crash.

    A :class:`StoreMiss` (first run, changed corpus or params) rebuilds
    silently.  A :class:`StoreLoadError` (artifacts present but corrupt)
    rebuilds too, surfacing the event through
    :class:`~repro.batch.runtime.DegradedExecutionWarning`, the
    ``store_load_failures`` degradation counter, and the rebuilt index's
    ``last_degradation`` -- the same ladder discipline as the engine
    runtime.  The rebuilt structure is bit-identical to a cold build:
    nothing from the rejected artifact is reused.

    With ``save_on_miss=True`` a miss-triggered build is published back
    to the store (best effort: a failed save warns and returns the
    freshly built index anyway), so the next process warm-starts -- the
    serving tier's restart path.  Corruption-triggered rebuilds are
    *not* re-saved: overwriting a snapshot that just failed verification
    would hide the fault from the operator.
    """
    params = dict(params or {})
    artifact_store = ArtifactStore.coerce(store)
    # Composite structures (the sharded tier) persist as several child
    # snapshots rather than one, so they take over the whole
    # load-or-rebuild decision: each child gets its own miss-vs-corrupt
    # treatment and only the affected child rebuilds.
    override = getattr(cls, "_load_or_build_override", None)
    if override is not None:
        return cast(
            IndexT,
            override(
                items,
                distance,
                artifact_store,
                params,
                save_on_miss=save_on_miss,
            ),
        )
    factory = cast(Callable[..., IndexT], cls)
    try:
        return artifact_store.load(cls, items, distance, params)
    except StoreMiss:
        index = factory(items, distance, **params)
        if save_on_miss:
            try:
                artifact_store.save(index)
            except (OSError, StoreError) as exc:
                warnings.warn(
                    f"could not persist freshly built {cls.__name__} "
                    f"({exc}); serving from the in-process build",
                    DegradedExecutionWarning,
                    stacklevel=3,
                )
        return index
    except StoreLoadError as exc:
        DEGRADATION.record("store_load_failures")
        warnings.warn(
            f"artifact load failed for {cls.__name__} ({exc}); rebuilding "
            "in process",
            DegradedExecutionWarning,
            stacklevel=3,
        )
        index = factory(items, distance, **params)
        index.last_degradation = dict(index.last_degradation)
        index.last_degradation["store_load_failures"] = (
            index.last_degradation.get("store_load_failures", 0) + 1
        )
        return index
