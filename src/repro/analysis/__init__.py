"""Analysis substrate: histograms, intrinsic dimensionality, agreement."""

from .agreement import AgreementReport, heuristic_agreement
from .dimension import intrinsic_dimensionality, intrinsic_dimensionality_of
from .histogram import DistanceHistogram, pairwise_distance_sample
from .plots import render_histograms, render_series

__all__ = [
    "DistanceHistogram",
    "pairwise_distance_sample",
    "intrinsic_dimensionality",
    "intrinsic_dimensionality_of",
    "AgreementReport",
    "heuristic_agreement",
    "render_histograms",
    "render_series",
]
