"""Intrinsic dimensionality of a metric space (Table 1).

Chávez, Navarro, Baeza-Yates & Marroquín (2001) quantify the difficulty
of searching a metric space by ``rho = mu^2 / (2 sigma^2)``, where ``mu``
and ``sigma^2`` are the mean and variance of the distance histogram: the
more concentrated the histogram (large mean relative to spread), the
higher ``rho`` and the less the triangle inequality can prune.

The reproduced paper prints the formula as ``mu^2 / sigma^2`` (a typeset
artefact -- its reference [1] defines the factor-2 version).  Both are
offered; the experiments report Chávez's ``rho`` by default and the
relative *ordering* across distances (what Table 1 is about) is identical
under either convention.
"""

from __future__ import annotations

from typing import Any, Callable, Optional, Sequence

__all__ = ["intrinsic_dimensionality", "intrinsic_dimensionality_of"]


def intrinsic_dimensionality(
    mean: float, variance: float, chavez_factor: bool = True
) -> float:
    """``rho = mean^2 / (2 * variance)`` (or without the 2).

    Returns ``inf`` for zero variance (all distances equal -- the worst
    possible space for pruning).
    """
    if variance < 0:
        raise ValueError(f"variance must be >= 0, got {variance}")
    if variance == 0.0:
        return float("inf")
    rho = mean * mean / variance
    return rho / 2.0 if chavez_factor else rho


def intrinsic_dimensionality_of(
    items: Sequence[Any],
    distance: Callable[[Any, Any], float],
    max_pairs: Optional[int] = None,
    chavez_factor: bool = True,
) -> float:
    """Convenience: sample pairwise distances of *items* and return rho."""
    from .histogram import pairwise_distance_sample

    values = pairwise_distance_sample(items, distance, max_pairs=max_pairs)
    return intrinsic_dimensionality(
        float(values.mean()), float(values.var()), chavez_factor
    )
