"""Pairwise-distance sampling and histograms (Figures 1 and 2).

"Several authors have used histograms of distances to characterise the
difficulty of searching in an arbitrary metric space" -- the histogram is
the raw object behind both the figures and Table 1's intrinsic
dimensionality, so it gets a first-class type here.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..batch import pairwise_values

__all__ = ["DistanceHistogram", "pairwise_distance_sample"]


def pairwise_distance_sample(
    items: Sequence[Any],
    distance: Callable[[Any, Any], float],
    max_pairs: Optional[int] = None,
    rng: Optional[random.Random] = None,
    workers: Union[int, str, None] = "auto",
) -> np.ndarray:
    """Distances over unordered item pairs.

    Computes *all* ``n(n-1)/2`` pairs when that count fits in *max_pairs*
    (or when *max_pairs* is None); otherwise draws *max_pairs* random
    distinct-index pairs (with replacement across pairs, which is how
    distance histograms are estimated in the metric-search literature).

    Evaluation runs through the pair-batched engine, so registered
    distances are swept many pairs at a time (and duplicate draws cost
    nothing); ``workers`` defaults to ``"auto"``, fanning the batch out
    over a process pool when the pair count and core count justify it.
    """
    n = len(items)
    if n < 2:
        raise ValueError(f"need at least 2 items, got {n}")
    total = n * (n - 1) // 2
    pairs: List[Tuple[Any, Any]] = []
    if max_pairs is None or total <= max_pairs:
        for i in range(n):
            for j in range(i + 1, n):
                pairs.append((items[i], items[j]))
    else:
        rng = rng if rng is not None else random.Random(0xD157)
        for _ in range(max_pairs):
            i = rng.randrange(n)
            j = rng.randrange(n - 1)
            if j >= i:
                j += 1
            pairs.append((items[i], items[j]))
    return np.asarray(
        pairwise_values(distance, pairs, workers=workers), dtype=float
    )


@dataclass(frozen=True)
class DistanceHistogram:
    """A distance histogram with its summary statistics.

    ``bin_edges`` has ``len(counts) + 1`` entries (numpy convention).
    ``mean``/``variance`` are computed from the raw values, not the binned
    approximation, so Table 1's dimensionality is exact.
    """

    label: str
    bin_edges: np.ndarray
    counts: np.ndarray
    mean: float
    variance: float
    n_values: int

    @classmethod
    def from_values(
        cls,
        values: np.ndarray,
        label: str = "",
        bins: int = 60,
        value_range: Optional[Tuple[float, float]] = None,
    ) -> "DistanceHistogram":
        """Bin *values* (1-D array of distances) into a histogram."""
        values = np.asarray(values, dtype=float)
        if values.size == 0:
            raise ValueError("cannot build a histogram from zero values")
        counts, edges = np.histogram(values, bins=bins, range=value_range)
        return cls(
            label=label,
            bin_edges=edges,
            counts=counts,
            mean=float(values.mean()),
            variance=float(values.var()),
            n_values=int(values.size),
        )

    @property
    def intrinsic_dimensionality(self) -> float:
        """Chávez et al.'s ``rho = mu^2 / (2 sigma^2)`` (Table 1)."""
        from .dimension import intrinsic_dimensionality

        return intrinsic_dimensionality(self.mean, self.variance)

    def normalized_counts(self) -> np.ndarray:
        """Counts scaled to sum to 1 (for overlaying histograms)."""
        total = self.counts.sum()
        if total == 0:
            return self.counts.astype(float)
        return self.counts / total

    def overlap(self, other: "DistanceHistogram") -> float:
        """Histogram intersection in [0, 1] against *other* (same binning
        required); 1.0 means the two distributions coincide bin-by-bin.

        Used by the Figure 1 reproduction to quantify "both distances have
        a very similar behaviour".
        """
        if not np.allclose(self.bin_edges, other.bin_edges):
            raise ValueError("histograms use different binnings")
        return float(
            np.minimum(self.normalized_counts(), other.normalized_counts()).sum()
        )
