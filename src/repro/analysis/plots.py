"""Terminal (ASCII) rendering of the paper's figures.

Every figure reproduction prints its data both as numbers and as an ASCII
chart, so a benchmark run is visually checkable without any plotting
dependency.  Two renderers cover the paper's needs: overlaid histograms
(Figures 1-2) and multi-series x/y charts (Figures 3-4).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

__all__ = ["render_histograms", "render_series"]

#: Markers assigned to series, in order.
_MARKERS = "ox+*#@%&"


def render_histograms(
    histograms: Sequence["DistanceHistogram"],  # noqa: F821 - doc type
    width: int = 72,
    height: int = 16,
    normalise: bool = True,
) -> str:
    """Overlay one or more :class:`~repro.analysis.histogram.DistanceHistogram`.

    Each histogram is drawn as a column profile with its own marker; a
    legend line maps markers to labels.  Bins are resampled onto *width*
    columns over the union of the value ranges.
    """
    if not histograms:
        raise ValueError("no histograms to render")
    lo = min(float(h.bin_edges[0]) for h in histograms)
    hi = max(float(h.bin_edges[-1]) for h in histograms)
    if hi <= lo:
        hi = lo + 1.0
    columns = np.linspace(lo, hi, width + 1)
    profiles: List[np.ndarray] = []
    for h in histograms:
        weights = h.normalized_counts() if normalise else h.counts.astype(float)
        centers = (h.bin_edges[:-1] + h.bin_edges[1:]) / 2.0
        profile, _ = np.histogram(centers, bins=columns, weights=weights)
        profiles.append(profile)
    peak = max(float(p.max()) for p in profiles) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for series, profile in enumerate(profiles):
        marker = _MARKERS[series % len(_MARKERS)]
        for col in range(width):
            level = int(round(profile[col] / peak * (height - 1)))
            if profile[col] > 0 and level == 0:
                level = 1  # keep tiny-but-nonzero mass visible
            if level > 0:
                row = height - 1 - level
                if grid[row][col] == " ":
                    grid[row][col] = marker
    lines = ["".join(row).rstrip() for row in grid]
    axis = f"{lo:<10.3g}{' ' * max(0, width - 20)}{hi:>10.3g}"
    legend = "   ".join(
        f"{_MARKERS[i % len(_MARKERS)]} = {h.label or f'series {i}'}"
        for i, h in enumerate(histograms)
    )
    return "\n".join(lines + ["-" * width, axis, legend])


def render_series(
    series: Dict[str, Tuple[Sequence[float], Sequence[float]]],
    width: int = 72,
    height: int = 18,
    x_label: str = "",
    y_label: str = "",
) -> str:
    """Scatter-plot several named ``(xs, ys)`` series on one ASCII grid.

    Used for Figures 3 and 4 (distance computations / time vs number of
    pivots).  Each series gets a marker; points landing on the same cell
    keep the first marker drawn.
    """
    if not series:
        raise ValueError("no series to render")
    all_x = [x for xs, _ in series.values() for x in xs]
    all_y = [y for _, ys in series.values() for y in ys]
    if not all_x:
        raise ValueError("series contain no points")
    x_lo, x_hi = min(all_x), max(all_x)
    y_lo, y_hi = min(all_y), max(all_y)
    if x_hi <= x_lo:
        x_hi = x_lo + 1.0
    if y_hi <= y_lo:
        y_hi = y_lo + 1.0
    grid = [[" "] * width for _ in range(height)]
    for idx, (name, (xs, ys)) in enumerate(series.items()):
        marker = _MARKERS[idx % len(_MARKERS)]
        for x, y in zip(xs, ys):
            col = int(round((x - x_lo) / (x_hi - x_lo) * (width - 1)))
            row = height - 1 - int(round((y - y_lo) / (y_hi - y_lo) * (height - 1)))
            if grid[row][col] == " ":
                grid[row][col] = marker
    lines = []
    for r, row in enumerate(grid):
        prefix = f"{y_hi:>10.4g} |" if r == 0 else (
            f"{y_lo:>10.4g} |" if r == height - 1 else " " * 10 + " |"
        )
        lines.append(prefix + "".join(row).rstrip())
    lines.append(" " * 10 + " +" + "-" * width)
    lines.append(
        " " * 10 + f"  {x_lo:<12.4g}{x_label:^{max(0, width - 28)}}{x_hi:>12.4g}"
    )
    legend = "   ".join(
        f"{_MARKERS[i % len(_MARKERS)]} = {name}"
        for i, name in enumerate(series)
    )
    lines.append(legend if not y_label else f"{legend}    (y: {y_label})")
    return "\n".join(lines)
