"""Exact-vs-heuristic agreement statistics (Section 4.1).

The paper reports that ``d_C,h(x, y) = d_C(x, y)`` in ~90% of cases, with
mean differences between 0.008 (contour strings) and 0.03 (dictionary).
:func:`heuristic_agreement` measures the same quantities on any dataset.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Optional, Sequence

from ..core.contextual import contextual_distance, contextual_distance_heuristic

__all__ = ["AgreementReport", "heuristic_agreement"]


@dataclass(frozen=True)
class AgreementReport:
    """Agreement of ``d_C,h`` with ``d_C`` over sampled pairs.

    ``mean_gap``/``max_gap`` are over *all* pairs; ``mean_gap_when_diff``
    restricts to the disagreeing pairs (closer to how the paper quotes
    "differences ranging from 0.03 ... to 0.008").
    """

    n_pairs: int
    n_equal: int
    mean_gap: float
    mean_gap_when_diff: float
    max_gap: float

    @property
    def agreement_rate(self) -> float:
        """Fraction of pairs where the heuristic is exactly optimal."""
        return self.n_equal / self.n_pairs if self.n_pairs else 1.0

    def summary(self) -> str:
        return (
            f"d_C,h == d_C on {self.n_equal}/{self.n_pairs} pairs "
            f"({100.0 * self.agreement_rate:.1f}%); "
            f"gap when different: mean {self.mean_gap_when_diff:.4f}, "
            f"max {self.max_gap:.4f}"
        )


def heuristic_agreement(
    items: Sequence[Any],
    n_pairs: int,
    rng: Optional[random.Random] = None,
    tolerance: float = 1e-9,
) -> AgreementReport:
    """Sample *n_pairs* random item pairs; compare exact and heuristic.

    The heuristic is an upper bound, so ``gap = d_C,h - d_C >= 0`` always
    (a negative gap would be a bug; an assertion guards it).
    """
    if len(items) < 2:
        raise ValueError("need at least two items")
    rng = rng if rng is not None else random.Random(0xA62E)
    n = len(items)
    equal = 0
    gaps = []
    for _ in range(n_pairs):
        i = rng.randrange(n)
        j = rng.randrange(n - 1)
        if j >= i:
            j += 1
        exact = contextual_distance(items[i], items[j])
        heuristic = contextual_distance_heuristic(items[i], items[j])
        gap = heuristic - exact
        assert gap >= -tolerance, (
            f"heuristic below exact for {items[i]!r}/{items[j]!r}: {gap}"
        )
        gap = max(gap, 0.0)
        if gap <= tolerance:
            equal += 1
        gaps.append(gap)
    diff_gaps = [g for g in gaps if g > tolerance]
    return AgreementReport(
        n_pairs=n_pairs,
        n_equal=equal,
        mean_gap=sum(gaps) / len(gaps) if gaps else 0.0,
        mean_gap_when_diff=(
            sum(diff_gaps) / len(diff_gaps) if diff_gaps else 0.0
        ),
        max_gap=max(gaps) if gaps else 0.0,
    )
