"""Table 2: 1-NN digit classification error, LAESA vs exhaustive search.

Six distances (``d_YB``, ``d_MV``, ``d_C``, ``d_C,h``, ``d_max``,
``d_E``), each evaluated with LAESA and with an exhaustive scan over
repeated prototype/query splits.  Reproduced claims: every normalisation
beats the raw edit distance; ``d_max`` (non-metric!) is best; ``d_C`` and
``d_C,h`` produce identical error rates; LAESA matches exhaustive search
almost exactly even for the non-metric distances.

Both columns classify each trial's query batch through ``bulk_knn``, so
the exhaustive column is one engine sweep per trial and the LAESA column
batches its query-to-pivot phase the same way; and because every index
breaks distance ties canonically on ``(distance, index)``, any residual
LAESA-vs-exhaustive disagreement is genuine pruning behaviour under a
non-metric distance, not tie-ordering noise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple, Union

from ..classify import TrialSummary, repeated_classification
from ..core import get_spec
from ..index import LaesaIndex
from .config import ExperimentScale, get_scale
from .data import digits_for
from .tables import Table

__all__ = ["Table2Result", "run", "PAPER_TABLE2", "TABLE2_DISTANCES"]

#: The published error rates (%): distance -> (LAESA, exhaustive).
PAPER_TABLE2: Dict[str, Tuple[float, float]] = {
    "yujian_bo": (5.19, 5.22),
    "marzal_vidal": (5.04, 5.04),
    "contextual": (5.30, 5.30),
    "contextual_heuristic": (5.30, 5.30),
    "dmax": (4.85, 4.86),
    "levenshtein": (6.19, 6.26),
}

#: Paper row order.
TABLE2_DISTANCES = tuple(PAPER_TABLE2)


@dataclass(frozen=True)
class Table2Result:
    """Per-distance trial summaries for both search strategies."""

    scale: str
    laesa: Dict[str, TrialSummary]
    exhaustive: Dict[str, TrialSummary]

    def render(self) -> str:
        table = Table(
            title="Table 2 -- 1-NN digit classification error rate (%)",
            headers=[
                "distance",
                "LAESA",
                "Exhaustive",
                "paper LAESA",
                "paper Exh.",
            ],
        )
        for name in TABLE2_DISTANCES:
            display = get_spec(name).display
            paper_laesa, paper_exh = PAPER_TABLE2[name]
            table.add_row(
                display,
                f"{100.0 * self.laesa[name].mean_error_rate:.2f}"
                f" ± {100.0 * self.laesa[name].error_rate_deviation:.2f}",
                f"{100.0 * self.exhaustive[name].mean_error_rate:.2f}"
                f" ± {100.0 * self.exhaustive[name].error_rate_deviation:.2f}",
                paper_laesa,
                paper_exh,
            )
        table.notes.append(
            "claims: normalisations beat dE; dmax best; dC == dC,h; "
            "LAESA ~ exhaustive"
        )
        return table.render()


def run(
    scale: Union[str, ExperimentScale] = "default", seed: int = 6
) -> Table2Result:
    """Run the repeated-trial classification for all six distances."""
    cfg = get_scale(scale)
    digits = digits_for(cfg)
    laesa_results: Dict[str, TrialSummary] = {}
    exhaustive_results: Dict[str, TrialSummary] = {}
    for name in TABLE2_DISTANCES:
        distance = get_spec(name).function

        def laesa_factory(items, dist):
            return LaesaIndex(
                items, dist, n_pivots=min(cfg.classify_pivots, len(items) - 1)
            )

        laesa_results[name] = repeated_classification(
            digits,
            distance,
            index_factory=laesa_factory,
            per_class=cfg.classify_per_class,
            n_test=cfg.classify_test,
            n_trials=cfg.classify_trials,
            seed=seed,
        )
        exhaustive_results[name] = repeated_classification(
            digits,
            distance,
            index_factory=None,  # exhaustive
            per_class=cfg.classify_per_class,
            n_test=cfg.classify_test,
            n_trials=cfg.classify_trials,
            seed=seed,  # same splits as the LAESA runs
        )
    return Table2Result(
        scale=cfg.name, laesa=laesa_results, exhaustive=exhaustive_results
    )
