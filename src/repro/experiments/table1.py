"""Table 1: intrinsic dimensionality of five distances on three datasets.

``rho = mu^2 / (2 sigma^2)`` over the pairwise-distance histogram
(Chávez et al.).  The paper's claim is about *ordering*: ``d_E`` has the
lowest rho everywhere, ``d_C,h`` the lowest among the normalised
distances, and ``d_YB``/``d_MV``/``d_max`` are substantially more
concentrated.  The published absolute values are included for comparison.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Tuple, Union

from ..analysis import intrinsic_dimensionality, pairwise_distance_sample
from ..core import PAPER_ALL, get_spec
from .config import ExperimentScale, get_scale
from .data import dictionary_for, digits_for, genes_for
from .tables import Table

__all__ = ["Table1Result", "run", "PAPER_TABLE1"]

#: The published Table 1 values: distance -> (Spanish D., hand. digits, genes).
PAPER_TABLE1: Dict[str, Tuple[float, float, float]] = {
    "yujian_bo": (40.57, 18.81, 8.43),
    "contextual_heuristic": (18.61, 7.95, 1.88),
    "marzal_vidal": (33.98, 19.36, 11.25),
    "dmax": (30.25, 19.48, 14.13),
    "levenshtein": (8.75, 4.91, 0.99),
}

_DATASET_ORDER = ("Spanish D.", "hand. digits", "genes")


@dataclass(frozen=True)
class Table1Result:
    """Measured rho per (distance, dataset), alongside the paper's values."""

    scale: str
    measured: Dict[str, Tuple[float, float, float]]

    def ordering_preserved(self) -> Dict[str, bool]:
        """Per-dataset check of the paper's two ordering claims:
        ``rho(dE) < rho(dC,h)`` and ``rho(dC,h) < min(rho of the other
        normalised distances)``."""
        out = {}
        for col, dataset in enumerate(_DATASET_ORDER):
            d_e = self.measured["levenshtein"][col]
            d_ch = self.measured["contextual_heuristic"][col]
            others = min(
                self.measured[name][col]
                for name in ("yujian_bo", "marzal_vidal", "dmax")
            )
            out[dataset] = d_e < d_ch < others
        return out

    def render(self) -> str:
        table = Table(
            title="Table 1 -- intrinsic dimensionality (measured | paper)",
            headers=["distance"] + [f"{d}" for d in _DATASET_ORDER],
        )
        for name in PAPER_ALL:
            display = get_spec(name).display
            cells = []
            for col in range(3):
                cells.append(
                    f"{self.measured[name][col]:.2f} | {PAPER_TABLE1[name][col]:.2f}"
                )
            table.add_row(display, *cells)
        checks = self.ordering_preserved()
        table.notes.append(
            "ordering claim rho(dE) < rho(dC,h) < rho(others): "
            + ", ".join(f"{k}: {'OK' if v else 'VIOLATED'}" for k, v in checks.items())
        )
        table.notes.append(
            "absolute values depend on the (synthetic) data; the ordering "
            "is the reproduced claim"
        )
        return table.render()


def run(
    scale: Union[str, ExperimentScale] = "default", seed: int = 3
) -> Table1Result:
    """Measure rho for the five paper distances on the three datasets."""
    cfg = get_scale(scale)
    rng = random.Random(seed)
    datasets = {
        "Spanish D.": dictionary_for(cfg).sample(
            min(cfg.hist_words, cfg.dictionary_words), rng
        ),
        "hand. digits": digits_for(cfg).sample(
            min(cfg.hist_digits, 10 * cfg.digits_per_class), rng
        ),
        "genes": genes_for(cfg).sample(min(cfg.hist_genes, cfg.gene_count), rng),
    }
    measured: Dict[str, Tuple[float, float, float]] = {}
    for name in PAPER_ALL:
        spec = get_spec(name)
        rhos = []
        for dataset_name in _DATASET_ORDER:
            values = pairwise_distance_sample(
                datasets[dataset_name].items,
                spec.function,
                max_pairs=cfg.hist_max_pairs,
                rng=random.Random(seed + 23),  # same pairs across distances
            )
            rhos.append(
                intrinsic_dimensionality(float(values.mean()), float(values.var()))
            )
        measured[name] = tuple(rhos)
    return Table1Result(scale=cfg.name, measured=measured)
