"""Figure 4: LAESA effort vs pivot count on handwritten digit contours.

Same sweep as Figure 3 but on the digit-contour dataset, with held-out
contours (different synthetic "writers") as queries.  The paper highlights
that the *average number of distance computations* for the contextual
distance is similar to Levenshtein's across two very different datasets.
"""

from __future__ import annotations

import random
from typing import List, Tuple, Union

from ..core import PAPER_ALL
from .config import ExperimentScale, get_scale
from .data import digits_for
from .laesa_sweep import LaesaSweepResult, run_sweep

__all__ = ["run"]


def run(
    scale: Union[str, ExperimentScale] = "default", seed: int = 5
) -> LaesaSweepResult:
    """Sweep LAESA pivot counts over digit contours for all five distances."""
    cfg = get_scale(scale)
    digits = digits_for(cfg)

    # Every trial shuffles the same digit set, so the training sets are
    # slices of one shared pool: run_sweep persists a single pool
    # distance memmap per distance and slices per-trial submatrices for
    # pivot selection instead of recomputing pivot rows every trial.
    def make_trial(rng: random.Random) -> Tuple[List[int], List]:
        order = list(range(len(digits)))
        rng.shuffle(order)
        n_train = min(cfg.digits_laesa_train, len(order) - 1)
        n_queries = min(cfg.digits_laesa_queries, len(order) - n_train)
        train_indices = order[:n_train]
        queries = [
            digits.items[i] for i in order[n_train : n_train + n_queries]
        ]
        return train_indices, queries

    return run_sweep(
        title="Figure 4 (handwritten digits)",
        scale_name=cfg.name,
        distance_names=PAPER_ALL,
        pivot_counts=cfg.digits_pivot_counts,
        n_trials=cfg.digits_laesa_trials,
        seed=seed,
        make_trial=make_trial,
        pool=list(digits.items),
    )
