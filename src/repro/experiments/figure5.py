"""Figure 5: "Different '8' and '0' from the NIST database".

The paper shows sample digit images to illustrate that "orientation and
sizes are widely different from scribe to scribe" (no preprocessing was
applied before classification).  This reproduction renders a row of '8's
and a row of '0's from distinct synthetic writer styles, together with
the within-class variation statistics that motivate normalised distances.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Tuple, Union

import numpy as np

from ..core import max_normalized_distance
from ..datasets import freeman_chain_code, render_digit
from .config import ExperimentScale, get_scale
from .tables import Table

__all__ = ["Figure5Result", "run"]


def _bitmap_lines(image: np.ndarray) -> List[str]:
    return ["".join("#" if v else "." for v in row) for row in image]


@dataclass(frozen=True)
class Figure5Result:
    """Rendered sample digits plus intra-class variation statistics."""

    scale: str
    eights: Tuple[Tuple[str, ...], ...]  # bitmaps as line tuples
    zeros: Tuple[Tuple[str, ...], ...]
    mean_intra_class_distance: float

    def render(self) -> str:
        def row_of(bitmaps: Tuple[Tuple[str, ...], ...]) -> str:
            height = len(bitmaps[0])
            lines = []
            for r in range(height):
                lines.append("   ".join(b[r] for b in bitmaps))
            return "\n".join(lines)

        table = Table(
            title="Figure 5 -- writer variation among '8's and '0's",
            headers=["digit", "samples", "mean pairwise dmax over contours"],
        )
        table.add_row("8 and 0", len(self.eights) + len(self.zeros),
                      self.mean_intra_class_distance)
        table.notes.append(
            "paper: no preprocessing -- orientation and sizes differ "
            "widely from scribe to scribe"
        )
        return (
            f"{table.render()}\n\nEights from four writers:\n"
            f"{row_of(self.eights)}\n\nZeros from four writers:\n"
            f"{row_of(self.zeros)}"
        )


def run(
    scale: Union[str, ExperimentScale] = "default", seed: int = 9
) -> Figure5Result:
    """Render four '8's and four '0's from distinct writer styles."""
    cfg = get_scale(scale)
    rng = random.Random(seed)
    grid = min(cfg.digit_grid, 22)  # keep rows printable side by side

    def samples(digit: int) -> Tuple[Tuple[str, ...], ...]:
        out = []
        for _ in range(4):
            image = render_digit(digit, rng, grid=grid)
            out.append(tuple(_bitmap_lines(image)))
        return tuple(out)

    eights = samples(8)
    zeros = samples(0)
    # quantify the variation: mean pairwise normalised distance between
    # the contours of same-digit samples
    contours = []
    for bitmaps in (eights, zeros):
        group = []
        for bitmap in bitmaps:
            image = np.array([[c == "#" for c in line] for line in bitmap])
            group.append(freeman_chain_code(image))
        contours.append(group)
    distances = []
    for group in contours:
        for i in range(len(group)):
            for j in range(i + 1, len(group)):
                distances.append(max_normalized_distance(group[i], group[j]))
    return Figure5Result(
        scale=cfg.name,
        eights=eights,
        zeros=zeros,
        mean_intra_class_distance=sum(distances) / len(distances),
    )
