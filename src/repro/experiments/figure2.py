"""Figure 2: distance histograms on the gene dataset.

The paper plots the four normalised distances (``d_YB``, ``d_C,h``,
``d_MV``, ``d_max``) on one panel and the raw Levenshtein distance on a
second, observing that the other normalised distances are far more
concentrated than the contextual and Levenshtein ones.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Union

from ..analysis import DistanceHistogram, pairwise_distance_sample, render_histograms
from ..core import PAPER_NORMALISED, get_spec
from .config import ExperimentScale, get_scale
from .data import genes_for
from .tables import Table

__all__ = ["Figure2Result", "run"]


@dataclass(frozen=True)
class Figure2Result:
    """Histograms per distance (normalised panel + Levenshtein panel)."""

    scale: str
    normalised: Dict[str, DistanceHistogram]
    levenshtein: DistanceHistogram

    def render(self) -> str:
        table = Table(
            title="Figure 2 -- distance histograms on genes",
            headers=["distance", "mean", "std dev", "intrinsic dim (rho)"],
        )
        for name, hist in {
            **self.normalised,
            "dE": self.levenshtein,
        }.items():
            table.add_row(
                name, hist.mean, hist.variance ** 0.5,
                hist.intrinsic_dimensionality,
            )
        table.notes.append(
            "paper: dYB/dMV/dmax concentrate; dC,h and dE spread "
            "(low rho = easy triangle-inequality pruning)"
        )
        top = render_histograms(list(self.normalised.values()))
        bottom = render_histograms([self.levenshtein])
        return (
            f"{table.render()}\n\nNormalised distances:\n{top}\n\n"
            f"Levenshtein distance:\n{bottom}"
        )


def run(
    scale: Union[str, ExperimentScale] = "default", seed: int = 2
) -> Figure2Result:
    """Histogram the four normalised distances and d_E over gene pairs."""
    cfg = get_scale(scale)
    rng = random.Random(seed)
    genes = genes_for(cfg)
    items = genes.sample(min(cfg.hist_genes, len(genes)), rng).items
    normalised: Dict[str, DistanceHistogram] = {}
    for name in PAPER_NORMALISED:
        spec = get_spec(name)
        values = pairwise_distance_sample(
            items,
            spec.function,
            max_pairs=cfg.hist_max_pairs,
            rng=random.Random(seed + 17),  # same pairs for every distance
        )
        normalised[spec.display] = DistanceHistogram.from_values(
            values, label=spec.display, bins=cfg.hist_bins
        )
    lev_values = pairwise_distance_sample(
        items,
        get_spec("levenshtein").function,
        max_pairs=cfg.hist_max_pairs,
        rng=random.Random(seed + 17),
    )
    levenshtein = DistanceHistogram.from_values(
        lev_values, label="dE", bins=cfg.hist_bins
    )
    return Figure2Result(
        scale=cfg.name, normalised=normalised, levenshtein=levenshtein
    )
