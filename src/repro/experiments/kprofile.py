"""Where does the exact optimum sit on the k axis?

Section 4.1 justifies the heuristic with: "it can be shown that the
minimum value is obtained very often for k = d_E(x, y)".  This experiment
measures exactly that: over sampled pairs of each dataset, the
distribution of ``argmin_k D(k, ni(k)) - d_E`` -- how many *extra* paid
operations the optimal contextual path uses beyond the Levenshtein
minimum.  A mass concentrated at 0 is the heuristic's whole reason to
exist.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Union

from ..core.contextual import contextual_profile
from .config import ExperimentScale, get_scale
from .data import agreement_genes_for, dictionary_for, digits_for
from .tables import Table

__all__ = ["KGapResult", "run"]


@dataclass(frozen=True)
class KGapResult:
    """Per-dataset distribution of ``argmin k - d_E`` over sampled pairs."""

    scale: str
    distributions: Dict[str, Dict[int, int]]

    def fraction_at_zero(self, dataset: str) -> float:
        """Share of pairs whose optimum sits exactly at ``k = d_E``."""
        dist = self.distributions[dataset]
        total = sum(dist.values())
        return dist.get(0, 0) / total if total else 1.0

    def render(self) -> str:
        gaps = sorted({g for d in self.distributions.values() for g in d})
        table = Table(
            title="Section 4.1 -- offset of the optimal k from d_E",
            headers=["dataset", "pairs", "at k=dE (%)"]
            + [f"gap={g}" for g in gaps if g > 0],
        )
        for name, dist in self.distributions.items():
            total = sum(dist.values())
            row = [name, total, 100.0 * self.fraction_at_zero(name)]
            for g in gaps:
                if g > 0:
                    row.append(dist.get(g, 0))
            table.add_row(*row)
        table.notes.append(
            'paper: "the minimum value is obtained very often for '
            'k = d_E(x, y)" -- the basis of the d_C,h heuristic'
        )
        return table.render()


def run(
    scale: Union[str, ExperimentScale] = "default", seed: int = 8
) -> KGapResult:
    """Measure the argmin-k offset distribution on all three datasets."""
    cfg = get_scale(scale)
    master = random.Random(seed)
    datasets = {
        "dictionary": (dictionary_for(cfg), cfg.agreement_pairs),
        "digit contours": (digits_for(cfg), cfg.agreement_pairs),
        "genes (capped length)": (
            agreement_genes_for(cfg),
            max(10, cfg.agreement_pairs // 10),
        ),
    }
    distributions: Dict[str, Dict[int, int]] = {}
    for name, (data, n_pairs) in datasets.items():
        rng = random.Random(master.randrange(2**31))
        counts: Dict[int, int] = {}
        n = len(data)
        for _ in range(n_pairs):
            i = rng.randrange(n)
            j = rng.randrange(n - 1)
            if j >= i:
                j += 1
            points = contextual_profile(data.items[i], data.items[j])
            if not points:  # identical strings sampled: optimum is k=0=d_E
                counts[0] = counts.get(0, 0) + 1
                continue
            d_e = min(p.k for p in points)
            best = min(points, key=lambda p: p.cost)
            gap = best.k - d_e
            counts[gap] = counts.get(gap, 0) + 1
        distributions[name] = counts
    return KGapResult(scale=cfg.name, distributions=distributions)
