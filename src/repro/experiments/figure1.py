"""Figure 1: histograms of ``d_C`` and ``d_C,h`` on the dictionary.

The paper overlays the distance histograms of the exact contextual
distance and its heuristic over Spanish-dictionary samples and observes
"both distances have a very similar behaviour (the intrinsic
dimensionality in both cases is similar)".  This reproduction draws the
same overlay and reports the histogram intersection, both intrinsic
dimensionalities, and the share of identical values.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Union

import numpy as np

from ..analysis import DistanceHistogram, render_histograms
from ..batch import pairwise_values
from .config import ExperimentScale, get_scale
from .data import dictionary_for
from .tables import Table

__all__ = ["Figure1Result", "run"]


@dataclass(frozen=True)
class Figure1Result:
    """Exact and heuristic histograms plus their similarity measures."""

    scale: str
    exact: DistanceHistogram
    heuristic: DistanceHistogram
    overlap: float
    equal_fraction: float

    def render(self) -> str:
        table = Table(
            title="Figure 1 -- d_C vs d_C,h distance histograms (dictionary)",
            headers=["distance", "mean", "variance", "intrinsic dim (rho)"],
        )
        table.add_row(
            "dC", self.exact.mean, self.exact.variance,
            self.exact.intrinsic_dimensionality,
        )
        table.add_row(
            "dC,h", self.heuristic.mean, self.heuristic.variance,
            self.heuristic.intrinsic_dimensionality,
        )
        table.notes.append(
            f"histogram intersection {self.overlap:.3f} "
            f"(1.0 = identical); values identical on "
            f"{100.0 * self.equal_fraction:.1f}% of pairs"
        )
        table.notes.append(
            "paper: the two histograms nearly coincide (Figure 1), "
            "agreement ~90% (Section 4.1)"
        )
        chart = render_histograms([self.exact, self.heuristic])
        return f"{table.render()}\n\n{chart}"


def run(scale: Union[str, ExperimentScale] = "default", seed: int = 1) -> Figure1Result:
    """Sample dictionary pairs, histogram ``d_C`` and ``d_C,h``."""
    cfg = get_scale(scale)
    rng = random.Random(seed)
    words = dictionary_for(cfg).sample(cfg.fig1_samples, rng)
    n = len(words)
    total_pairs = n * (n - 1) // 2
    if total_pairs <= cfg.fig1_max_pairs:
        pairs = [(i, j) for i in range(n) for j in range(i + 1, n)]
    else:
        pairs = []
        for _ in range(cfg.fig1_max_pairs):
            i = rng.randrange(n)
            j = rng.randrange(n - 1)
            if j >= i:
                j += 1
            pairs.append((i, j))
    # Both distances over the same pairs through the batch engine: the
    # heuristic runs on the pair-batched twin-table kernel; the exact
    # cubic d_C falls back to one scalar call per *unique* pair (the
    # dictionary sampling draws many duplicates at paper scale).
    pair_items = [(words.items[i], words.items[j]) for i, j in pairs]
    exact_values = pairwise_values("contextual", pair_items)
    heuristic_values = pairwise_values("contextual_heuristic", pair_items)
    equal = int(np.sum(np.abs(heuristic_values - exact_values) <= 1e-9))
    hi = float(max(exact_values.max(), heuristic_values.max()))
    value_range = (0.0, hi if hi > 0 else 1.0)
    exact_hist = DistanceHistogram.from_values(
        exact_values, label="dC", bins=cfg.fig1_bins, value_range=value_range
    )
    heuristic_hist = DistanceHistogram.from_values(
        heuristic_values, label="dC,h", bins=cfg.fig1_bins, value_range=value_range
    )
    return Figure1Result(
        scale=cfg.name,
        exact=exact_hist,
        heuristic=heuristic_hist,
        overlap=exact_hist.overlap(heuristic_hist),
        equal_fraction=equal / len(pairs),
    )
