"""Minimal aligned-text tables for experiment output."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Sequence

__all__ = ["Table"]


def _format_cell(value: Any) -> str:
    if isinstance(value, float):
        if value != value:  # NaN
            return "-"
        if abs(value) >= 1000 or (value != 0 and abs(value) < 0.001):
            return f"{value:.3g}"
        return f"{value:.3f}".rstrip("0").rstrip(".") or "0"
    return str(value)


@dataclass
class Table:
    """An aligned text table with a title and optional footnotes."""

    title: str
    headers: Sequence[str]
    rows: List[Sequence[Any]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add_row(self, *cells: Any) -> None:
        if len(cells) != len(self.headers):
            raise ValueError(
                f"row has {len(cells)} cells; table has {len(self.headers)} columns"
            )
        self.rows.append(cells)

    def render(self) -> str:
        formatted = [[_format_cell(c) for c in row] for row in self.rows]
        widths = [len(h) for h in self.headers]
        for row in formatted:
            for col, cell in enumerate(row):
                widths[col] = max(widths[col], len(cell))
        header = "  ".join(h.ljust(widths[i]) for i, h in enumerate(self.headers))
        rule = "-" * len(header)
        lines = [self.title, "=" * len(self.title), header, rule]
        for row in formatted:
            lines.append(
                "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
            )
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)
