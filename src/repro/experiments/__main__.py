"""CLI for the experiment suite.

Examples::

    python -m repro.experiments --list
    python -m repro.experiments tab1
    python -m repro.experiments fig3 --scale smoke
    python -m repro.experiments all --scale default
"""

from __future__ import annotations

import argparse
import sys
import time

from . import EXPERIMENTS, run
from .config import SCALES


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Reproduce the paper's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        nargs="?",
        help=f"experiment id ({', '.join(EXPERIMENTS)}) or 'all'",
    )
    parser.add_argument(
        "--scale",
        default="default",
        choices=sorted(SCALES),
        help="size preset (default: default)",
    )
    parser.add_argument(
        "--list", action="store_true", help="list available experiments"
    )
    parser.add_argument(
        "--save",
        metavar="DIR",
        help="also write <id>.txt/.json (and .csv for sweeps) under DIR",
    )
    args = parser.parse_args(argv)

    if args.list or not args.experiment:
        for key, (_, description) in EXPERIMENTS.items():
            print(f"{key:8s} {description}")
        return 0

    ids = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for experiment_id in ids:
        if experiment_id not in EXPERIMENTS:
            print(
                f"unknown experiment {experiment_id!r}; "
                f"known: {', '.join(EXPERIMENTS)}",
                file=sys.stderr,
            )
            return 2
        started = time.perf_counter()
        result = run(experiment_id, scale=args.scale)
        elapsed = time.perf_counter() - started
        print(result.render())
        print(f"\n[{experiment_id} completed in {elapsed:.1f}s at scale "
              f"'{args.scale}']\n")
        if args.save:
            from .export import export_result

            safe_id = experiment_id.replace(".", "_")
            for path in export_result(result, args.save, safe_id):
                print(f"[saved {path}]")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
