"""Shared machinery for Figures 3 and 4: LAESA pivot-count sweeps.

For each trial, a training set is drawn and a query set built; for every
distance and every pivot count, each query's nearest neighbour is searched
with LAESA and the number of distance computations and the search time are
averaged.  Max-min pivot selection is nested, so each (trial, distance)
selects pivots once at the maximum count and slices for smaller counts.
Each query batch runs through :meth:`LaesaIndex.bulk_knn`, so the pivot
phase of the whole batch is one pair-batched engine sweep per
(trial, distance, pivot count) cell; reported computation counts are
identical to the scalar per-query loop by construction.

When the trials all draw their training sets from one shared *pool*
(Figure 4: every trial shuffles the same digit set), pass ``pool=`` and
have ``make_trial`` return pool *indices*: the sweep then persists one
:func:`~repro.batch.pairwise_matrix_memmap` of the pool per distance and
slices each trial's ``train x train`` submatrix out of it, so pivot
selection (:func:`~repro.index.select_pivots_from_matrix`) costs zero
distance evaluations after the first trial touches the pool.  The
amortisation wins whenever ``trials * max_pivots`` exceeds about half the
pool size.  Figure 3 samples small training sets out of a dictionary that
is orders of magnitude larger, so its pool (when the amortisation gate
decides one pays) is the *union of the pre-drawn trials' training sets*:
:func:`draw_trial_seeds` exposes the per-trial RNG stream so the trials
can be replayed up front without perturbing a single random draw.
Reported query-phase statistics are identical either way (the matrix is
bit-identical to scalar evaluation, so the selected pivots -- and hence
every search -- are too).

Every LAESA answer is spot-checked against the exhaustive result for
metric distances (a correctness tripwire, not a benchmark-time cost: only
the first trial's first pivot count is checked).
"""

from __future__ import annotations

import os
import random
import statistics
import tempfile
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..analysis import render_series
from ..batch import pairwise_matrix_memmap
from ..core import get_spec
from ..index import (
    ExhaustiveIndex,
    LaesaIndex,
    select_pivots,
    select_pivots_from_matrix,
)
from .tables import Table

__all__ = ["SweepSeries", "LaesaSweepResult", "draw_trial_seeds", "run_sweep"]


def draw_trial_seeds(seed: int, n_trials: int) -> List[int]:
    """The per-trial RNG seeds :func:`run_sweep` derives from *seed*.

    Exposed so callers can *pre-draw* trials (replay each trial's
    sampling with ``random.Random(trial_seed)``) before invoking the
    sweep -- e.g. to learn the union of the trials' training sets and
    pass it as ``pool=`` (Figure 3) -- while keeping every random draw
    identical to the un-previewed sweep.
    """
    master = random.Random(seed)
    return [master.randrange(2**31) for _ in range(n_trials)]


@dataclass(frozen=True)
class SweepSeries:
    """Mean and deviation per pivot count, for one distance."""

    distance: str
    computations: Tuple[float, ...]
    computations_dev: Tuple[float, ...]
    seconds: Tuple[float, ...]
    seconds_dev: Tuple[float, ...]


@dataclass(frozen=True)
class LaesaSweepResult:
    """All series of one sweep (one paper figure)."""

    title: str
    scale: str
    pivot_counts: Tuple[int, ...]
    series: Dict[str, SweepSeries]
    n_train: int

    def render(self) -> str:
        table = Table(
            title=f"{self.title} -- LAESA distance computations per query",
            headers=["distance"] + [f"p={p}" for p in self.pivot_counts],
        )
        for name, s in self.series.items():
            table.add_row(name, *[f"{c:.1f}" for c in s.computations])
        table.notes.append(
            f"training set size {self.n_train}; exhaustive search would "
            f"compute {self.n_train} distances per query"
        )
        time_table = Table(
            title=f"{self.title} -- LAESA search time per query (ms)",
            headers=["distance"] + [f"p={p}" for p in self.pivot_counts],
        )
        for name, s in self.series.items():
            time_table.add_row(name, *[f"{1000.0 * t:.2f}" for t in s.seconds])
        comp_chart = render_series(
            {
                name: (list(self.pivot_counts), list(s.computations))
                for name, s in self.series.items()
            },
            x_label="number of pivots",
            y_label="distance computations",
        )
        time_chart = render_series(
            {
                name: (list(self.pivot_counts), [1000.0 * t for t in s.seconds])
                for name, s in self.series.items()
            },
            x_label="number of pivots",
            y_label="time (ms)",
        )
        return (
            f"{table.render()}\n\n{comp_chart}\n\n"
            f"{time_table.render()}\n\n{time_chart}"
        )


def run_sweep(
    title: str,
    scale_name: str,
    distance_names: Sequence[str],
    pivot_counts: Sequence[int],
    n_trials: int,
    seed: int,
    make_trial: Callable[[random.Random], Tuple[List, List]],
    pool: Optional[Sequence] = None,
) -> LaesaSweepResult:
    """Run the sweep.  ``make_trial(rng) -> (train_items, queries)``.

    With ``pool`` given, ``make_trial(rng) -> (train_indices, queries)``
    instead: training sets are slices of *pool* and preprocessing reuses
    one on-disk pool distance matrix per distance across all trials (see
    the module docstring for when that amortisation pays).
    """
    pivot_counts = tuple(sorted(set(pivot_counts)))
    max_pivots = pivot_counts[-1]
    per_distance: Dict[str, Dict[int, List[Tuple[float, float]]]] = {
        name: {p: [] for p in pivot_counts} for name in distance_names
    }
    checked = False
    n_train = 0
    pool_matrices: Dict[str, np.memmap] = {}
    pool_dir: Optional[tempfile.TemporaryDirectory] = None
    if pool is not None:
        pool_dir = tempfile.TemporaryDirectory(prefix="repro-sweep-")

    def _pool_matrix(name: str) -> np.memmap:
        """The shared pool distance memmap for *name*, built on demand."""
        matrix = pool_matrices.get(name)
        if matrix is None:
            path = os.path.join(pool_dir.name, f"{name}.npy")
            # close=True: the matrix is read for the rest of the sweep,
            # so drop the writable handle rather than keep it dangling
            matrix = pairwise_matrix_memmap(name, pool, path=path, close=True)
            pool_matrices[name] = matrix
        return matrix

    try:
        for trial_seed in draw_trial_seeds(seed, n_trials):
            trial_rng = random.Random(trial_seed)
            if pool is None:
                train, queries = make_trial(trial_rng)
                train_indices = None
            else:
                train_indices, queries = make_trial(trial_rng)
                train_indices = list(train_indices)
                train = [pool[i] for i in train_indices]
            n_train = len(train)
            effective_max = min(max_pivots, len(train))
            for name in distance_names:
                spec = get_spec(name)
                selection_rng = random.Random(trial_rng.randrange(2**31))
                if train_indices is None:
                    pivot_indices, pivot_rows = select_pivots(
                        train,
                        spec.function,
                        effective_max,
                        strategy="maxmin",
                        rng=selection_rng,
                    )
                else:
                    # slice this trial's train x train submatrix out of the
                    # persistent pool memmap: selection decisions (and the
                    # LAESA pivot rows) are identical to evaluating the
                    # distances afresh, at zero distance computations
                    sub = np.asarray(
                        _pool_matrix(name)[np.ix_(train_indices, train_indices)]
                    )
                    pivot_indices, pivot_rows = select_pivots_from_matrix(
                        sub, effective_max, strategy="maxmin", rng=selection_rng
                    )
                for p in pivot_counts:
                    p_eff = min(p, effective_max)
                    index = LaesaIndex.from_pivots(
                        train, spec.function, pivot_indices[:p_eff], pivot_rows[:p_eff]
                    )
                    batch = index.bulk_knn(queries, 1)
                    comp_total = sum(s.distance_computations for _, s in batch)
                    time_total = sum(s.elapsed_seconds for _, s in batch)
                    per_distance[name][p].append(
                        (comp_total / len(queries), time_total / len(queries))
                    )
                    if not checked and spec.is_metric:
                        # correctness tripwire: LAESA must agree with a scan
                        exhaustive = ExhaustiveIndex(train, spec.function)
                        truth, _ = exhaustive.nearest(queries[0])
                        found, _ = index.nearest(queries[0])
                        if abs(truth.distance - found.distance) > 1e-9:
                            raise AssertionError(
                                f"LAESA disagrees with exhaustive search for "
                                f"{name}: {found.distance} vs {truth.distance}"
                            )
                        checked = True
    finally:
        if pool_dir is not None:
            pool_matrices.clear()  # release the memmaps first
            pool_dir.cleanup()
    series: Dict[str, SweepSeries] = {}
    for name in distance_names:
        display = get_spec(name).display
        comps, comp_devs, secs, sec_devs = [], [], [], []
        for p in pivot_counts:
            trials = per_distance[name][p]
            cs = [c for c, _ in trials]
            ts = [t for _, t in trials]
            comps.append(statistics.fmean(cs))
            secs.append(statistics.fmean(ts))
            comp_devs.append(statistics.pstdev(cs) if len(cs) > 1 else 0.0)
            sec_devs.append(statistics.pstdev(ts) if len(ts) > 1 else 0.0)
        series[display] = SweepSeries(
            distance=display,
            computations=tuple(comps),
            computations_dev=tuple(comp_devs),
            seconds=tuple(secs),
            seconds_dev=tuple(sec_devs),
        )
    return LaesaSweepResult(
        title=title,
        scale=scale_name,
        pivot_counts=pivot_counts,
        series=series,
        n_train=n_train,
    )
