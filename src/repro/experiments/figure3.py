"""Figure 3: LAESA effort vs pivot count on the Spanish dictionary.

Training sets are drawn from the dictionary; queries are genqueries-style
perturbations (2 edit operations) of training words, as in the paper.
The claims under reproduction: computations fall steeply with the first
pivots then flatten; ``d_C,h`` needs a number of computations comparable
to ``d_E`` and much lower than ``d_YB``/``d_MV``/``d_max``; per-query
time for ``d_C,h`` is roughly twice ``d_E``'s, compensated by the smaller
number of computed distances.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple, Union

from ..core import PAPER_ALL
from ..datasets import perturbed_queries
from .config import ExperimentScale, get_scale
from .data import dictionary_for
from .laesa_sweep import LaesaSweepResult, draw_trial_seeds, run_sweep

__all__ = ["run"]


def run(
    scale: Union[str, ExperimentScale] = "default",
    seed: int = 4,
    pool_mode: str = "auto",
    trial_overlap: Optional[float] = 2.0,
) -> LaesaSweepResult:
    """Sweep LAESA pivot counts over the dictionary for all five distances.

    Unlike Figure 4 (whose trials all shuffle one digit pool), each trial
    here samples a small training set out of a dictionary that is orders
    of magnitude larger -- so the shared pool matrix ``run_sweep`` reuses
    across trials is built over the *union of the pre-drawn trials'
    training sets*, not the dictionary.  Trials are pre-drawn by
    replaying :func:`~repro.experiments.laesa_sweep.draw_trial_seeds`'s
    per-trial RNG stream, so every sample, perturbation and pivot
    selection is identical to the un-pooled sweep (the pool matrix itself
    is bit-identical to fresh evaluation).

    ``trial_overlap`` makes the trials *overlap*: every trial samples its
    training set from one shared sub-pool of ``trial_overlap *
    laesa_train`` dictionary words (drawn once per seed) instead of the
    whole dictionary.  The paper draws repeated training sets without
    forbidding overlap, and sampling with it bounds the union of the
    trials' training sets by the sub-pool size -- which is what lets the
    one-off union matrix amortise at dictionary (paper) scale, where
    disjoint trials would make ``C(|union|, 2)`` grow quadratically in
    the trial count.  ``None`` restores whole-dictionary sampling.

    ``pool_mode`` selects the preprocessing strategy: ``"auto"``
    (default) uses the union pool only when its one-off ``C(|union|, 2)``
    matrix costs no more than the per-trial pivot selections it replaces
    (``trials * max_pivots * n_train`` evaluations -- heavy trial overlap
    or many trials); ``"pool"`` / ``"plain"`` force either path (results
    are identical, only preprocessing cost moves).
    """
    if pool_mode not in ("auto", "pool", "plain"):
        raise ValueError(
            f"pool_mode must be auto, pool or plain; got {pool_mode!r}"
        )
    cfg = get_scale(scale)
    words = dictionary_for(cfg)
    trial_source = words
    if trial_overlap is not None:
        if trial_overlap < 1.0:
            raise ValueError(
                f"trial_overlap must be >= 1 (got {trial_overlap}): every "
                "trial needs laesa_train words to sample from"
            )
        sub = min(len(words.items), int(round(trial_overlap * cfg.laesa_train)))
        if sub < len(words.items):
            # drawn from its own RNG stream so the per-trial draws below
            # stay identical across pool_mode (and across overlap sizes)
            trial_source = words.sample(sub, random.Random(seed ^ 0x0DD1))

    def sample_trial(rng: random.Random):
        train = trial_source.sample(cfg.laesa_train, rng)
        queries = perturbed_queries(train, cfg.laesa_queries, rng, operations=2)
        return train, queries

    use_pool = pool_mode == "pool"
    pool: List = []
    if pool_mode != "plain":
        # Pre-draw every trial (replaying the sweep's exact RNG stream)
        # to learn the union of the training sets.
        index_of: Dict = {}
        for trial_seed in draw_trial_seeds(seed, cfg.laesa_trials):
            train, _ = sample_trial(random.Random(trial_seed))
            for word in train.items:
                if word not in index_of:
                    index_of[word] = len(pool)
                    pool.append(word)
        if pool_mode == "auto":
            pool_cost = len(pool) * (len(pool) - 1) // 2
            plain_cost = (
                cfg.laesa_trials * max(cfg.pivot_counts) * cfg.laesa_train
            )
            use_pool = pool_cost <= plain_cost

    if use_pool:

        def make_trial(rng: random.Random) -> Tuple[List[int], List]:
            # consume rng exactly like the plain path so the pivot
            # selection draws that follow remain identical
            train, queries = sample_trial(rng)
            return [index_of[word] for word in train.items], queries

        return run_sweep(
            title="Figure 3 (Spanish dictionary)",
            scale_name=cfg.name,
            distance_names=PAPER_ALL,
            pivot_counts=cfg.pivot_counts,
            n_trials=cfg.laesa_trials,
            seed=seed,
            make_trial=make_trial,
            pool=pool,
        )

    def make_trial_plain(rng: random.Random) -> Tuple[List, List]:
        train, queries = sample_trial(rng)
        return list(train.items), queries

    return run_sweep(
        title="Figure 3 (Spanish dictionary)",
        scale_name=cfg.name,
        distance_names=PAPER_ALL,
        pivot_counts=cfg.pivot_counts,
        n_trials=cfg.laesa_trials,
        seed=seed,
        make_trial=make_trial_plain,
    )
