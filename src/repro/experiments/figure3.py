"""Figure 3: LAESA effort vs pivot count on the Spanish dictionary.

Training sets are drawn from the dictionary; queries are genqueries-style
perturbations (2 edit operations) of training words, as in the paper.
The claims under reproduction: computations fall steeply with the first
pivots then flatten; ``d_C,h`` needs a number of computations comparable
to ``d_E`` and much lower than ``d_YB``/``d_MV``/``d_max``; per-query
time for ``d_C,h`` is roughly twice ``d_E``'s, compensated by the smaller
number of computed distances.
"""

from __future__ import annotations

import random
from typing import List, Tuple, Union

from ..core import PAPER_ALL
from ..datasets import perturbed_queries
from .config import ExperimentScale, get_scale
from .data import dictionary_for
from .laesa_sweep import LaesaSweepResult, run_sweep

__all__ = ["run"]


def run(
    scale: Union[str, ExperimentScale] = "default", seed: int = 4
) -> LaesaSweepResult:
    """Sweep LAESA pivot counts over the dictionary for all five distances."""
    cfg = get_scale(scale)
    words = dictionary_for(cfg)

    # No shared pool matrix here (unlike Figure 4): each trial samples a
    # small training set out of a dictionary that is orders of magnitude
    # larger, so a pool-wide distance memmap would cost C(|dict|, 2)
    # evaluations against the trials' p * n pivot rows -- the wrong side
    # of the amortisation run_sweep's pool mode exists for.
    def make_trial(rng: random.Random) -> Tuple[List, List]:
        train = words.sample(cfg.laesa_train, rng)
        queries = perturbed_queries(
            train, cfg.laesa_queries, rng, operations=2
        )
        return list(train.items), queries

    return run_sweep(
        title="Figure 3 (Spanish dictionary)",
        scale_name=cfg.name,
        distance_names=PAPER_ALL,
        pivot_counts=cfg.pivot_counts,
        n_trials=cfg.laesa_trials,
        seed=seed,
        make_trial=make_trial,
    )
