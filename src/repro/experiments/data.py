"""Per-scale dataset construction, cached within the process.

All experiments share the same three synthetic datasets; building them is
deterministic in the scale, so results are cached on the scale's identity
to keep multi-experiment runs (and the benchmark suite) fast.
"""

from __future__ import annotations

from functools import lru_cache

from ..datasets import Dataset, handwritten_digits, listeria_genes, spanish_dictionary
from .config import ExperimentScale

__all__ = ["dictionary_for", "genes_for", "digits_for", "agreement_genes_for"]


@lru_cache(maxsize=8)
def _dictionary(n_words: int) -> Dataset:
    return spanish_dictionary(n_words=n_words, seed=2008)


@lru_cache(maxsize=8)
def _genes(n_genes: int, max_length: int) -> Dataset:
    return listeria_genes(n_genes=n_genes, seed=1926, max_length=max_length)


@lru_cache(maxsize=8)
def _digits(per_class: int, grid: int) -> Dataset:
    return handwritten_digits(per_class=per_class, seed=1995, grid=grid)


def dictionary_for(scale: ExperimentScale) -> Dataset:
    """The synthetic Spanish dictionary at this scale."""
    return _dictionary(scale.dictionary_words)


def genes_for(scale: ExperimentScale) -> Dataset:
    """The synthetic gene set at this scale."""
    return _genes(scale.gene_count, scale.gene_max_length)


def agreement_genes_for(scale: ExperimentScale) -> Dataset:
    """Shorter genes for the exact-vs-heuristic comparison (exact ``d_C``
    is cubic, so Section 4.1's gene pairs use a capped length)."""
    return _genes(scale.gene_count, scale.agreement_gene_max_length)


def digits_for(scale: ExperimentScale) -> Dataset:
    """The synthetic digit-contour dataset at this scale."""
    return _digits(scale.digits_per_class, scale.digit_grid)
