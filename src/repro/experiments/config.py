"""Experiment scale presets.

Four presets ship:

* ``smoke``  -- seconds; used by the test-suite to exercise every
  experiment end-to-end;
* ``bench``  -- tens of seconds to ~2 minutes per experiment; the
  pytest-benchmark suite's default (override with REPRO_BENCH_SCALE);
* ``default`` -- minutes per experiment on a laptop; produces stable
  shapes (EXPERIMENTS.md records a default-scale run);
* ``paper``  -- the published sample counts (8000 dictionary samples,
  ~1000 genes/digits, 1000x1000 LAESA trials, pivots to 300).  Hours of
  pure-Python compute; provided for completeness and documented in
  EXPERIMENTS.md.

Every experiment takes ``scale`` as a preset name or an
:class:`ExperimentScale` instance, so custom trade-offs are one dataclass
away.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple, Union

__all__ = ["ExperimentScale", "SCALES", "get_scale"]


@dataclass(frozen=True)
class ExperimentScale:
    """All size knobs for the experiment suite (see module docstring)."""

    name: str
    # shared synthetic datasets
    dictionary_words: int
    gene_count: int
    gene_max_length: int
    digits_per_class: int
    digit_grid: int
    # figure 1 (exact-vs-heuristic histograms, dictionary)
    fig1_samples: int
    fig1_max_pairs: int
    fig1_bins: int
    # section 4.1 (agreement statistics)
    agreement_pairs: int
    agreement_gene_max_length: int
    # figure 2 / table 1 (histograms and intrinsic dimensionality)
    hist_words: int
    hist_digits: int
    hist_genes: int
    hist_max_pairs: int
    hist_bins: int
    # figure 3 (LAESA sweep, dictionary)
    laesa_train: int
    laesa_queries: int
    laesa_trials: int
    pivot_counts: Tuple[int, ...]
    # figure 4 (LAESA sweep, digit contours)
    digits_laesa_train: int
    digits_laesa_queries: int
    digits_laesa_trials: int
    digits_pivot_counts: Tuple[int, ...]
    # table 2 (digit classification)
    classify_per_class: int
    classify_test: int
    classify_trials: int
    classify_pivots: int
    # speed ablation
    speed_pairs: int


SCALES: Dict[str, ExperimentScale] = {
    "smoke": ExperimentScale(
        name="smoke",
        dictionary_words=300,
        gene_count=24,
        gene_max_length=90,
        digits_per_class=4,
        digit_grid=20,
        fig1_samples=40,
        fig1_max_pairs=150,
        fig1_bins=24,
        agreement_pairs=25,
        agreement_gene_max_length=90,
        hist_words=50,
        hist_digits=20,
        hist_genes=16,
        hist_max_pairs=200,
        hist_bins=24,
        laesa_train=60,
        laesa_queries=12,
        laesa_trials=1,
        pivot_counts=(0, 4, 8),
        digits_laesa_train=30,
        digits_laesa_queries=6,
        digits_laesa_trials=1,
        digits_pivot_counts=(0, 4),
        classify_per_class=2,
        classify_test=8,
        classify_trials=1,
        classify_pivots=4,
        speed_pairs=12,
    ),
    "bench": ExperimentScale(
        name="bench",
        dictionary_words=2000,
        gene_count=60,
        gene_max_length=400,
        digits_per_class=25,
        digit_grid=24,
        fig1_samples=150,
        fig1_max_pairs=8000,
        fig1_bins=40,
        agreement_pairs=150,
        agreement_gene_max_length=200,
        hist_words=250,
        hist_digits=150,
        hist_genes=60,
        hist_max_pairs=1500,
        hist_bins=40,
        laesa_train=300,
        laesa_queries=80,
        laesa_trials=2,
        pivot_counts=(0, 10, 25, 50, 100),
        digits_laesa_train=150,
        digits_laesa_queries=30,
        digits_laesa_trials=1,
        digits_pivot_counts=(0, 10, 25, 50),
        classify_per_class=8,
        classify_test=30,
        classify_trials=2,
        classify_pivots=25,
        speed_pairs=40,
    ),
    "default": ExperimentScale(
        name="default",
        dictionary_words=4000,
        gene_count=90,
        gene_max_length=500,
        digits_per_class=40,
        digit_grid=24,
        fig1_samples=250,
        fig1_max_pairs=20000,
        fig1_bins=48,
        agreement_pairs=400,
        agreement_gene_max_length=240,
        hist_words=400,
        hist_digits=300,
        hist_genes=90,
        hist_max_pairs=3000,
        hist_bins=48,
        laesa_train=500,
        laesa_queries=150,
        laesa_trials=3,
        pivot_counts=(0, 10, 25, 50, 100, 150),
        digits_laesa_train=300,
        digits_laesa_queries=60,
        digits_laesa_trials=2,
        digits_pivot_counts=(0, 10, 25, 50, 100),
        classify_per_class=12,
        classify_test=50,
        classify_trials=2,
        classify_pivots=40,
        speed_pairs=60,
    ),
    "paper": ExperimentScale(
        name="paper",
        dictionary_words=80000,
        gene_count=1000,
        gene_max_length=3000,
        digits_per_class=200,
        digit_grid=28,
        fig1_samples=8000,
        fig1_max_pairs=500000,
        fig1_bins=100,
        agreement_pairs=5000,
        agreement_gene_max_length=600,
        hist_words=8000,
        hist_digits=1000,
        hist_genes=1000,
        hist_max_pairs=500000,
        hist_bins=100,
        laesa_train=1000,
        laesa_queries=1000,
        laesa_trials=10,
        pivot_counts=tuple(range(0, 301, 25)),
        digits_laesa_train=1000,
        digits_laesa_queries=1000,
        digits_laesa_trials=10,
        digits_pivot_counts=tuple(range(0, 301, 25)),
        classify_per_class=100,
        classify_test=1000,
        classify_trials=10,
        classify_pivots=100,
        speed_pairs=1000,
    ),
}


def get_scale(scale: Union[str, ExperimentScale]) -> ExperimentScale:
    """Resolve a preset name (or pass an instance through)."""
    if isinstance(scale, ExperimentScale):
        return scale
    try:
        return SCALES[scale]
    except KeyError:
        raise KeyError(
            f"unknown scale {scale!r}; known: {sorted(SCALES)}"
        ) from None
