"""Ablation: per-pair computation cost of each distance.

Section 4.3 notes "the computation time of the contextual distance is
around twice the computation time of the Levenshtein distance, but this
is compensated by a largely inferior number of times the distance has
effectively to be computed".  This experiment times every registered
distance on the same pair sample from each dataset and reports the ratio
to Levenshtein.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Dict, List, Tuple, Union

from ..core import get_spec
from .config import ExperimentScale, get_scale
from .data import dictionary_for, digits_for
from .tables import Table

__all__ = ["SpeedResult", "run"]

#: "contextual" is added to the registry list so the exact algorithm's
#: cubic cost is visible next to the heuristic's quadratic one.
_DISTANCES = ("levenshtein", "contextual_heuristic", "contextual",
              "marzal_vidal", "yujian_bo", "dmax")


@dataclass(frozen=True)
class SpeedResult:
    """Mean per-pair seconds per (dataset, distance)."""

    scale: str
    seconds: Dict[str, Dict[str, float]]  # dataset -> distance -> s/pair

    def render(self) -> str:
        table = Table(
            title="Ablation -- distance computation time per pair",
            headers=["dataset", "distance", "us/pair", "ratio vs dE"],
        )
        for dataset, per_distance in self.seconds.items():
            base = per_distance["levenshtein"]
            for name, secs in per_distance.items():
                table.add_row(
                    dataset,
                    get_spec(name).display,
                    1e6 * secs,
                    secs / base if base > 0 else float("nan"),
                )
        table.notes.append(
            "paper: d_C,h costs ~2x d_E per computation; the exact d_C is "
            "cubic and much slower (which is why Section 4 uses d_C,h)"
        )
        return table.render()


def _time_pairs(
    pairs: List[Tuple[str, str]], distance
) -> float:
    started = time.perf_counter()
    for x, y in pairs:
        distance(x, y)
    return (time.perf_counter() - started) / len(pairs)


def run(
    scale: Union[str, ExperimentScale] = "default", seed: int = 7
) -> SpeedResult:
    """Time every distance on shared pair samples (dictionary + digits)."""
    cfg = get_scale(scale)
    rng = random.Random(seed)
    datasets = {
        "dictionary": dictionary_for(cfg),
        "digit contours": digits_for(cfg),
    }
    seconds: Dict[str, Dict[str, float]] = {}
    for dataset_name, data in datasets.items():
        n = len(data)
        pairs = []
        for _ in range(cfg.speed_pairs):
            i = rng.randrange(n)
            j = rng.randrange(n - 1)
            if j >= i:
                j += 1
            pairs.append((data.items[i], data.items[j]))
        per_distance: Dict[str, float] = {}
        for name in _DISTANCES:
            fn = get_spec(name).function
            fn(*pairs[0])  # warm caches outside the timed region
            per_distance[name] = _time_pairs(pairs, fn)
        seconds[dataset_name] = per_distance
    return SpeedResult(scale=cfg.name, seconds=seconds)
