"""One runnable module per table/figure of the paper's evaluation.

========  ============================================================
id        artefact
========  ============================================================
fig1      Figure 1 -- d_C vs d_C,h histograms (dictionary)
sec4.1    in-text agreement statistics of the heuristic
fig2      Figure 2 -- normalised-distance histograms (genes)
tab1      Table 1 -- intrinsic dimensionality (5 distances x 3 datasets)
fig3      Figure 3 -- LAESA sweep on the dictionary
fig4      Figure 4 -- LAESA sweep on digit contours
tab2      Table 2 -- 1-NN digit classification error
speed     ablation -- per-pair distance computation cost
kgap      in-text: offset of the optimal k from d_E (heuristic rationale)
========  ============================================================

Run any of them with ``python -m repro.experiments <id> [--scale s]`` or
call ``repro.experiments.run(id, scale)`` programmatically; every result
object has ``render()`` producing the paper-style table/figure as text.
"""

from typing import Union

from . import (
    agreement,
    figure1,
    figure2,
    figure3,
    figure4,
    figure5,
    kprofile,
    speed,
    table1,
    table2,
)
from .config import SCALES, ExperimentScale, get_scale

__all__ = ["EXPERIMENTS", "run", "SCALES", "ExperimentScale", "get_scale"]

#: id -> (module.run, one-line description)
EXPERIMENTS = {
    "fig1": (figure1.run, "Figure 1: d_C vs d_C,h histograms (dictionary)"),
    "sec4.1": (agreement.run, "Section 4.1: heuristic agreement statistics"),
    "fig2": (figure2.run, "Figure 2: distance histograms on genes"),
    "tab1": (table1.run, "Table 1: intrinsic dimensionality"),
    "fig3": (figure3.run, "Figure 3: LAESA sweep on the dictionary"),
    "fig4": (figure4.run, "Figure 4: LAESA sweep on digit contours"),
    "tab2": (table2.run, "Table 2: 1-NN digit classification error"),
    "fig5": (figure5.run, "Figure 5: writer variation among sample digits"),
    "speed": (speed.run, "Ablation: per-pair distance computation cost"),
    "kgap": (kprofile.run, "Section 4.1: offset of the optimal k from d_E"),
}


def run(experiment_id: str, scale: Union[str, ExperimentScale] = "default"):
    """Run one experiment by id; returns its result object."""
    try:
        runner, _ = EXPERIMENTS[experiment_id]
    except KeyError:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; known: {sorted(EXPERIMENTS)}"
        ) from None
    return runner(scale=scale)
