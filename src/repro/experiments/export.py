"""Exporting experiment results to JSON / CSV.

Every experiment's result object is a (possibly nested) dataclass;
:func:`result_to_dict` converts one into plain JSON-serialisable data
(numpy arrays become lists, numpy scalars become Python numbers), and
:func:`export_result` writes both the rendered text artefact and the JSON
next to each other.  LAESA sweeps additionally export a tidy CSV, one row
per (distance, pivot count), for external plotting.
"""

from __future__ import annotations

import csv
import dataclasses
import json
from pathlib import Path
from typing import Any, Dict, List, Union

import numpy as np

from .laesa_sweep import LaesaSweepResult

__all__ = ["result_to_dict", "export_result", "sweep_to_csv"]


def _plain(value: Any) -> Any:
    """Recursively convert dataclasses / numpy values to JSON-safe data."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            field.name: _plain(getattr(value, field.name))
            for field in dataclasses.fields(value)
        }
    if isinstance(value, np.ndarray):
        return [_plain(v) for v in value.tolist()]
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, dict):
        return {str(k): _plain(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_plain(v) for v in value]
    if isinstance(value, float) and value != value:  # NaN -> null
        return None
    return value


def result_to_dict(result: Any) -> Dict[str, Any]:
    """Convert an experiment result object to JSON-serialisable data."""
    if not (dataclasses.is_dataclass(result) and not isinstance(result, type)):
        raise TypeError(
            f"expected a dataclass result, got {type(result).__name__}"
        )
    return _plain(result)


def sweep_to_csv(result: LaesaSweepResult, path: Union[str, Path]) -> None:
    """Write a LAESA sweep as tidy CSV: one row per (distance, pivots)."""
    path = Path(path)
    with path.open("w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(
            ["distance", "pivots", "computations", "computations_dev",
             "seconds", "seconds_dev"]
        )
        for name, series in result.series.items():
            for i, pivots in enumerate(result.pivot_counts):
                writer.writerow(
                    [name, pivots, series.computations[i],
                     series.computations_dev[i], series.seconds[i],
                     series.seconds_dev[i]]
                )


def export_result(
    result: Any, directory: Union[str, Path], name: str
) -> List[Path]:
    """Write ``<name>.txt`` (rendered), ``<name>.json`` and, for sweeps,
    ``<name>.csv`` under *directory*; returns the written paths."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    written: List[Path] = []

    text_path = directory / f"{name}.txt"
    text_path.write_text(result.render() + "\n", encoding="utf-8")
    written.append(text_path)

    json_path = directory / f"{name}.json"
    json_path.write_text(
        json.dumps(result_to_dict(result), indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    written.append(json_path)

    if isinstance(result, LaesaSweepResult):
        csv_path = directory / f"{name}.csv"
        sweep_to_csv(result, csv_path)
        written.append(csv_path)
    return written
