"""Section 4.1's in-text claim: heuristic agreement across datasets.

"In experiments over the used benchmarks, d_C,h(x, y) = d_C(x, y) in 90%
of the cases, with differences ranging from 0.03 for the dictionary to
0.008 for the contour strings."  This experiment measures the agreement
rate and gap statistics on all three (synthetic) datasets.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Union

from ..analysis import AgreementReport, heuristic_agreement
from .config import ExperimentScale, get_scale
from .data import agreement_genes_for, dictionary_for, digits_for
from .tables import Table

__all__ = ["AgreementResult", "run"]


@dataclass(frozen=True)
class AgreementResult:
    """Per-dataset agreement reports."""

    scale: str
    reports: Dict[str, AgreementReport]

    def render(self) -> str:
        table = Table(
            title="Section 4.1 -- agreement of d_C,h with d_C",
            headers=[
                "dataset",
                "pairs",
                "equal %",
                "mean gap (diff only)",
                "max gap",
            ],
        )
        for name, report in self.reports.items():
            table.add_row(
                name,
                report.n_pairs,
                100.0 * report.agreement_rate,
                report.mean_gap_when_diff,
                report.max_gap,
            )
        table.notes.append(
            "paper: equal in ~90% of cases; differences 0.03 (dictionary) "
            "down to 0.008 (contour strings)"
        )
        return table.render()


def run(
    scale: Union[str, ExperimentScale] = "default", seed: int = 41
) -> AgreementResult:
    """Measure exact-vs-heuristic agreement on all three datasets."""
    cfg = get_scale(scale)
    rng = random.Random(seed)
    reports: Dict[str, AgreementReport] = {}
    datasets = {
        "dictionary": dictionary_for(cfg),
        "digit contours": digits_for(cfg),
        "genes (capped length)": agreement_genes_for(cfg),
    }
    for name, data in datasets.items():
        pairs = cfg.agreement_pairs
        if name.startswith("genes"):
            # exact d_C is cubic; genes are long, so fewer pairs suffice
            pairs = max(10, pairs // 10)
        reports[name] = heuristic_agreement(
            data.items, n_pairs=pairs, rng=random.Random(rng.randrange(2**31))
        )
    return AgreementResult(scale=cfg.name, reports=reports)
