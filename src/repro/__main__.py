"""``python -m repro``: a tiny distance calculator and package overview.

Examples::

    python -m repro                          # list distances
    python -m repro ababa baab               # all distances for one pair
    python -m repro ababa baab -d contextual # one distance
"""

from __future__ import annotations

import argparse

from . import __version__
from .core import get_spec, list_distances


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Contextual normalised edit distance "
        "(de la Higuera & Micó, ICDE 2008) -- distance calculator.",
    )
    parser.add_argument("x", nargs="?", help="first string")
    parser.add_argument("y", nargs="?", help="second string")
    parser.add_argument(
        "-d",
        "--distance",
        action="append",
        help="distance name (repeatable; default: all registered)",
    )
    args = parser.parse_args(argv)

    if args.x is None or args.y is None:
        print(f"repro {__version__} -- registered distances:\n")
        for spec in list_distances():
            metric = "metric    " if spec.is_metric else "not metric"
            print(f"  {spec.name:22s} {spec.display:6s} [{metric}] {spec.notes}")
        print(
            "\nusage: python -m repro <x> <y> [-d name ...]"
            "\nexperiments: python -m repro.experiments --list"
        )
        return 0

    names = args.distance or [spec.name for spec in list_distances()]
    width = max(len(name) for name in names)
    for name in names:
        spec = get_spec(name)  # raises KeyError with the known names
        value = spec.function(args.x, args.y)
        print(f"{name:{width}s} ({spec.display}): {value:.6f}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
