"""The sharded gather's k-merge kernel.

Each shard answers a query with its own canonically sorted result list
(:func:`repro.index.base.canonical_key` order -- ``(distance, index)``
with *global* indices).  Gathering is then a pure k-way merge: because
every global index appears in exactly one shard, the merge keys are
unique, and the merged prefix of length *k* is exactly what the
equivalent unsharded index returns -- same neighbours, same distances,
same canonical order, regardless of the order the shard lists arrive in
(the ``shard_merge_skew`` chaos fault feeds them reversed to prove it).

Property-tested in ``tests/shard/test_merge.py`` over arbitrary
per-shard lists with duplicate distances, ties across shard boundaries,
and ``k`` exceeding per-shard hit counts.
"""

from __future__ import annotations

import heapq
from typing import List, Optional, Sequence

from ..index.base import SearchResult, canonical_key

__all__ = ["k_merge"]


def k_merge(
    shard_lists: Sequence[Sequence[SearchResult]],
    k: Optional[int] = None,
) -> List[SearchResult]:
    """Merge per-shard result lists into one canonically ordered list.

    Every input list must already be sorted by :func:`canonical_key`
    (each shard's search guarantees this); the output is the canonical
    order over the union, truncated to the best *k* when given.  With
    unique ``(distance, index)`` keys -- global indices are disjoint
    across shards -- the result is independent of the order of
    *shard_lists*.
    """
    merged = list(heapq.merge(*shard_lists, key=canonical_key))
    if k is None:
        return merged
    return merged[:k]
