"""``ShardedIndex``: a scatter-gather query tier over partitioned corpora.

AESA's quadratic pivot matrix confines it to small databases, and even
LAESA is bounded by one interned table in one shared-memory block.  This
module breaks that ceiling by partitioning the *corpus itself*: the item
list is split into S size-balanced shards (deterministic under a seed),
each shard builds its own independent index -- LAESA pivot tables by
default, AESA when the shard is small enough for the existing
``_BULK_SWEEP_MAX_ITEMS``-style gate -- and every query scatters across
the shards and k-merges (:mod:`repro.shard.merge`) under the canonical
``(distance, global index)`` tie-break.

The exactness argument is the same one that makes pruned search exact:
each shard's search is exact over its slice (for metric distances), the
slices cover the corpus disjointly, so the merged best-k over all
slices *is* the global best-k -- same neighbours, same distances, same
canonical order as the equivalent unsharded index.  With ``shards=1``
the partition is the identity layout and the sharded index is the
unsharded index, per-query ``distance_computations`` included; with
more shards the counts are the deterministic **sum of what every
shard's search demanded**, identical between the parallel and serial
scatter paths (and for the exhaustive structure, identical to the
unsharded count: every item is evaluated exactly once either way).

Bulk scatters fan out over the persistent engine pool
(:mod:`repro.shard.scatter`): each worker attaches its shard's interned
twin matrices and structure arrays from shared memory and runs the
ordinary lockstep drivers serially in-process.  A failed shard task
falls back to the master re-running that one shard
(``shard_fallbacks`` degradation counter, ``DegradedExecutionWarning``)
-- the answer never changes, only where it was computed.

Persistence composes per shard: :meth:`ShardedIndex.save` snapshots
every shard under its own artifact key (the shard's corpus fingerprint
captures the layout), and ``load`` / ``load_or_build`` restores all
shards, rebuilding -- loudly -- only the ones whose artifacts are
corrupt.  :class:`~repro.serve.IndexServer` accepts a ``ShardedIndex``
unchanged: it is a :class:`~repro.index.base.NearestNeighborIndex` with
the same bulk entry points and degradation accounting.
"""

from __future__ import annotations

import time
import uuid
import warnings
import weakref
from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Type,
)

import numpy as np

from ..batch import runtime
from ..batch.runtime import DEGRADATION, DegradedExecutionWarning
from ..index.base import (
    CountingDistance,
    NearestNeighborIndex,
    SearchResult,
    SearchStats,
)
from ..tools import knobs
from . import scatter
from .merge import k_merge
from .scatter import ShardPublication, TaskResult

if TYPE_CHECKING:
    from pathlib import Path

    from ..batch.corpus import InternedCorpus
    from ..store.artifacts import ArtifactStore, StoreLike

__all__ = [
    "ShardedIndex",
    "partition_indices",
    "resolve_shard_count",
]

#: Structure names :class:`ShardedIndex` accepts for its per-shard
#: indexes (``"auto"`` picks AESA under the gate, LAESA above it).
STRUCTURES = ("auto", "exhaustive", "laesa", "aesa", "bktree", "vptree")

#: Default pivot count for per-shard LAESA tables (clamped to the shard
#: size); override via ``structure_params={"n_pivots": ...}``.
_DEFAULT_PIVOTS = 8


def resolve_shard_count(
    n_items: int,
    shards: Optional[int] = None,
    min_shard_items: Optional[int] = None,
) -> int:
    """The effective shard count for a corpus of *n_items*.

    An explicit *shards* wins (validated, clamped to the corpus size);
    otherwise ``REPRO_SHARD_COUNT`` applies, reduced until every shard
    holds at least *min_shard_items* (``REPRO_SHARD_MIN_ITEMS``) --
    tiny corpora collapse to one shard rather than paying scatter
    overhead for slivers.
    """
    if n_items < 1:
        raise ValueError("cannot shard an empty collection")
    explicit = shards is not None
    if shards is None:
        shards = knobs.get_int("REPRO_SHARD_COUNT", _DEFAULT_SHARDS, minimum=1)
        assert shards is not None
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    count = min(int(shards), n_items)
    if not explicit:
        if min_shard_items is None:
            min_shard_items = knobs.get_int(
                "REPRO_SHARD_MIN_ITEMS", _DEFAULT_MIN_ITEMS, minimum=1
            )
            assert min_shard_items is not None
        if min_shard_items > 0:
            count = min(count, max(1, n_items // min_shard_items))
    return count


_DEFAULT_SHARDS = 4
_DEFAULT_MIN_ITEMS = 32


def partition_indices(
    n_items: int, shards: int, seed: int = 0
) -> List[np.ndarray]:
    """Size-balanced deterministic partition of ``range(n_items)``.

    A seeded permutation is cut into *shards* contiguous slices (the
    first ``n_items % shards`` get one extra item) and each slice is
    sorted ascending, so within-shard order agrees with global order --
    the property that makes per-shard canonical result order compose
    into global canonical order under the k-merge.  With ``shards=1``
    the layout is the identity.
    """
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    if shards > n_items:
        raise ValueError(f"{shards} shards over {n_items} items")
    perm = np.random.default_rng(seed).permutation(n_items)
    base, extra = divmod(n_items, shards)
    layout: List[np.ndarray] = []
    pos = 0
    for si in range(shards):
        size = base + (1 if si < extra else 0)
        layout.append(np.sort(perm[pos : pos + size]).astype(np.int64))
        pos += size
    return layout


def _resolve_structure(
    structure: str, shard_size: int, params: Mapping[str, Any]
) -> Tuple[Type[NearestNeighborIndex[Any]], Dict[str, Any]]:
    """Map a structure name + shard size to ``(class, constructor
    kwargs)``.  ``"auto"`` follows the issue's rule: AESA while the
    shard fits the bulk-sweep gate (``REPRO_AESA_BULK_MAX_ITEMS``, the
    regime its quadratic build is affordable in), LAESA beyond it --
    and then only LAESA-applicable *params* are forwarded."""
    from ..index import (
        AesaIndex,
        BKTreeIndex,
        ExhaustiveIndex,
        LaesaIndex,
        VPTreeIndex,
    )

    if structure not in STRUCTURES:
        raise ValueError(
            f"unknown shard structure {structure!r} "
            f"(known: {', '.join(STRUCTURES)})"
        )
    kwargs = dict(params)
    if structure == "auto":
        gate = knobs.get_int("REPRO_AESA_BULK_MAX_ITEMS")
        if gate is None:
            gate = AesaIndex._BULK_SWEEP_MAX_ITEMS
        if shard_size <= gate:
            structure = "aesa"
            kwargs.pop("n_pivots", None)
            kwargs.pop("pivot_strategy", None)
        else:
            structure = "laesa"
    if structure == "laesa":
        kwargs.setdefault("n_pivots", min(_DEFAULT_PIVOTS, shard_size))
        return LaesaIndex, kwargs
    if structure == "aesa":
        return AesaIndex, kwargs
    if structure == "exhaustive":
        return ExhaustiveIndex, kwargs
    if structure == "bktree":
        return BKTreeIndex, kwargs
    return VPTreeIndex, kwargs


@dataclass(frozen=True)
class _Shard:
    """One corpus slice: its independent index plus the ascending map
    from shard-local positions back to global item indices."""

    index: NearestNeighborIndex[Any]
    global_ids: np.ndarray


class ShardedIndex(NearestNeighborIndex[Any]):
    """Scatter-gather index over S independently indexed corpus shards.

    Parameters
    ----------
    items, distance:
        The database and the (ideally metric) distance function --
        exactness of pruned per-shard searches requires the metric
        properties, exactly as for the unsharded structures.
    shards:
        Shard count; ``None`` resolves ``REPRO_SHARD_COUNT`` clamped by
        ``REPRO_SHARD_MIN_ITEMS`` (see :func:`resolve_shard_count`).
    seed:
        Partition seed (the layout is deterministic given ``(len(items),
        shards, seed)``).
    structure:
        Per-shard structure: one of :data:`STRUCTURES`.  The default
        ``"auto"`` builds AESA while the shard fits the bulk-sweep gate
        and LAESA beyond it.
    structure_params:
        Constructor keywords for the per-shard structure (e.g.
        ``{"n_pivots": 12}``).
    min_shard_items:
        Overrides ``REPRO_SHARD_MIN_ITEMS`` for the implicit count
        resolution (ignored when *shards* is explicit).
    """

    def __init__(
        self,
        items: Sequence[Any],
        distance: Callable[[Any, Any], float],
        *,
        shards: Optional[int] = None,
        seed: int = 0,
        structure: str = "auto",
        structure_params: Optional[Mapping[str, Any]] = None,
        min_shard_items: Optional[int] = None,
    ) -> None:
        super().__init__(items, distance)
        count = resolve_shard_count(len(self.items), shards, min_shard_items)
        layout = partition_indices(len(self.items), count, seed)
        self._configure(seed, structure, structure_params)
        shard_list: List[_Shard] = []
        for ids in layout:
            sub_items = [self.items[int(i)] for i in ids]
            sub_cls, sub_kwargs = _resolve_structure(
                structure, len(ids), self._structure_params
            )
            shard_list.append(_Shard(sub_cls(sub_items, distance, **sub_kwargs), ids))
        self._attach_shards(shard_list)

    # -- construction plumbing ----------------------------------------------

    def _init_index(
        self,
        items: Sequence[Any],
        distance: Callable[[Any, Any], float],
        corpus: Optional["InternedCorpus"],
    ) -> None:
        # Deliberately NOT the base body: the top level never dispatches
        # engine calls itself (every search runs inside a shard), so
        # interning the full corpus here would duplicate every shard's
        # twin matrices in memory for nothing.
        if not items:
            raise ValueError("cannot index an empty collection")
        self.items = list(items)
        self._counter = CountingDistance(distance)
        self.preprocessing_computations = 0
        self._corpus = None
        self.last_degradation = {}

    def _configure(
        self,
        seed: int,
        structure: str,
        structure_params: Optional[Mapping[str, Any]],
    ) -> None:
        if structure not in STRUCTURES:
            raise ValueError(
                f"unknown shard structure {structure!r} "
                f"(known: {', '.join(STRUCTURES)})"
            )
        self._seed = int(seed)
        self._structure = structure
        self._structure_params: Dict[str, Any] = dict(structure_params or {})
        #: Stable identity for the per-shard structure publications --
        #: workers cache rebuilt shards under it, generation-verified.
        self._key = uuid.uuid4().hex[:12]
        self._publish_cache: Optional[Tuple[int, List[ShardPublication]]] = None

    def _attach_shards(self, shard_list: List[_Shard]) -> None:
        self._shards = shard_list
        self.preprocessing_computations = sum(
            shard.index.preprocessing_computations for shard in shard_list
        )

    @classmethod
    def _from_shards(
        cls,
        items: Sequence[Any],
        distance: Callable[[Any, Any], float],
        shard_indexes: Sequence[NearestNeighborIndex[Any]],
        layout: Sequence[np.ndarray],
        *,
        seed: int,
        structure: str,
        structure_params: Optional[Mapping[str, Any]] = None,
    ) -> "ShardedIndex":
        """Assemble a sharded index around already-built shard indexes
        (the warm-start path: each shard came from the artifact store
        with zero distance evaluations)."""
        index = cls.__new__(cls)
        index._init_index(items, distance, None)
        index._configure(seed, structure, structure_params)
        index._attach_shards(
            [
                _Shard(shard, np.asarray(ids, dtype=np.int64))
                for shard, ids in zip(shard_indexes, layout)
            ]
        )
        return index

    @property
    def n_shards(self) -> int:
        return len(self._shards)

    @property
    def shard_sizes(self) -> List[int]:
        return [len(shard.index.items) for shard in self._shards]

    # -- scatter-gather -------------------------------------------------------

    def _globalise(self, shard: _Shard, hits: List[Tuple[int, float]]) -> List[SearchResult]:
        """Rebase one shard's ``(local index, distance)`` hits onto the
        global item space.  ``global_ids`` is ascending, so per-shard
        canonical order is preserved under the rebase."""
        items = self.items
        ids = shard.global_ids
        out = []
        for local, dist in hits:
            gid = int(ids[local])
            out.append(SearchResult(item=items[gid], index=gid, distance=dist))
        return out

    def _scatter(
        self, queries: List[Any], mode: str, arg: float
    ) -> List[TaskResult]:
        """Run every shard's bulk search over *queries*: in parallel on
        the persistent pool when possible, serially in the master for
        whatever could not run there.  Entry ``[si][qi]`` is shard
        *si*'s ``(local hits, demanded count)`` for query *qi* --
        bit-identical regardless of where the shard ran."""
        n_shards = len(self._shards)
        gathered: List[Optional[TaskResult]] = [None] * n_shards
        pending = list(range(n_shards))
        if n_shards > 1 and self._parallel_allowed():
            publications = self._publications()
            if publications is not None:
                rt = runtime.get_runtime()
                tasks = [
                    (
                        publications[si].blob,
                        publications[si].store,
                        mode,
                        arg,
                        queries,
                    )
                    for si in pending
                ]
                sizes = [
                    len(queries) * len(self._shards[si].index.items)
                    for si in pending
                ]
                out = rt.supervised_map(
                    scatter.shard_task, tasks, workers=n_shards, sizes=sizes
                )
                if out is not None:
                    results, _failed = out
                    for pos, si in enumerate(list(pending)):
                        if results[pos] is not None:
                            gathered[si] = results[pos]
                    pending = [si for si in pending if gathered[si] is None]
                    if pending:
                        DEGRADATION.record("shard_fallbacks", len(pending))
                        warnings.warn(
                            f"sharded scatter: {len(pending)}/{n_shards} "
                            "shard task(s) failed on the worker pool; "
                            "re-running them serially in the master "
                            "(results unchanged)",
                            DegradedExecutionWarning,
                            stacklevel=3,
                        )
        for si in pending:
            gathered[si] = scatter.run_shard_local(
                self._shards[si].index, queries, mode, arg
            )
        return [task for task in gathered if task is not None]

    def _parallel_allowed(self) -> bool:
        if not scatter.parallel_enabled():
            return False
        if not runtime.persistent_pool_enabled():
            return False
        import multiprocessing

        return not multiprocessing.current_process().daemon

    def _publications(self) -> Optional[List[ShardPublication]]:
        """The per-shard shared-memory publications for the current
        generation, publishing (and caching) on first use.  ``None``
        when the distance has no registry name, a shard has no interned
        corpus, or any segment publication failed -- the scatter then
        runs serially (quiet, like every no-pool fallback)."""
        generation = runtime.publish_generation()
        if self._publish_cache is not None and self._publish_cache[0] == generation:
            return self._publish_cache[1]
        self._publish_cache = None
        from ..batch.engine import _resolve

        name, _ = _resolve(self._counter._distance)
        if name is None:
            return None
        rt = runtime.get_runtime()
        publications: List[ShardPublication] = []
        for si, shard in enumerate(self._shards):
            publication = scatter.publish_shard(
                shard.index, f"shard-{self._key}-{si}", name
            )
            if publication is None:
                for done in publications:
                    rt.release_arrays(done.blob)
                return None
            # structure bundles live exactly as long as this index (the
            # corpus blocks already have their own per-corpus finalizer)
            weakref.finalize(self, rt.release_arrays, publication.blob)
            publications.append(publication)
        self._publish_cache = (generation, publications)
        return publications

    def _merge_order(self, n_shards: int) -> List[int]:
        """Shard order fed to the k-merge -- reversed under the
        ``shard_merge_skew`` chaos fault, which must not change any
        merged answer (unique ``(distance, global index)`` keys make the
        merge order-independent)."""
        from ..batch import faults

        order = list(range(n_shards))
        if faults.fires("shard_merge_skew"):
            order.reverse()
        return order

    def _gather(
        self,
        gathered: List[TaskResult],
        n_queries: int,
        k: Optional[int],
        elapsed: float,
    ) -> List[Tuple[List[SearchResult], SearchStats]]:
        order = self._merge_order(len(self._shards))
        share = elapsed / max(n_queries, 1)
        out: List[Tuple[List[SearchResult], SearchStats]] = []
        for qi in range(n_queries):
            lists = [
                self._globalise(self._shards[si], gathered[si][qi][0])
                for si in order
            ]
            count = sum(gathered[si][qi][1] for si in order)
            out.append(
                (
                    k_merge(lists, k),
                    SearchStats(
                        distance_computations=count, elapsed_seconds=share
                    ),
                )
            )
        return out

    # -- queries --------------------------------------------------------------

    def _search(self, query: Any, k: int) -> List[SearchResult]:
        lists: List[List[SearchResult]] = []
        total = 0
        for si in self._merge_order(len(self._shards)):
            shard = self._shards[si]
            results, stats = shard.index.knn(
                query, min(k, len(shard.index.items))
            )
            lists.append(
                [
                    SearchResult(
                        item=r.item,
                        index=int(shard.global_ids[r.index]),
                        distance=r.distance,
                    )
                    for r in results
                ]
            )
            total += stats.distance_computations
        self._counter.charge(total)
        return k_merge(lists, k)

    def _range_search(self, query: Any, radius: float) -> List[SearchResult]:
        lists: List[List[SearchResult]] = []
        total = 0
        for si in self._merge_order(len(self._shards)):
            shard = self._shards[si]
            results, stats = shard.index.range_search(query, radius)
            lists.append(
                [
                    SearchResult(
                        item=r.item,
                        index=int(shard.global_ids[r.index]),
                        distance=r.distance,
                    )
                    for r in results
                ]
            )
            total += stats.distance_computations
        self._counter.charge(total)
        return k_merge(lists)

    def bulk_knn(
        self, queries: Sequence[Any], k: int
    ) -> List[Tuple[List[SearchResult], SearchStats]]:
        """k-NN for a whole query batch by parallel scatter-gather.

        Every shard runs its ordinary lockstep ``bulk_knn`` over the
        batch (on a pool worker when possible, in the master otherwise)
        and the per-query answers k-merge under the canonical order.
        Neighbours, distances and per-query ``distance_computations``
        (the sum of what every shard demanded) are bit-identical to the
        serial scatter -- and, with one shard, to the unsharded
        structure itself.
        """
        self._validate_k(k)
        queries = list(queries)
        if not queries:
            return []
        with self._track_degradation():
            started = time.perf_counter()
            gathered = self._scatter(queries, "knn", k)
            return self._gather(
                gathered, len(queries), k, time.perf_counter() - started
            )

    def bulk_range_search(
        self, queries: Sequence[Any], radius: float
    ) -> List[Tuple[List[SearchResult], SearchStats]]:
        """Range search for a whole query batch by parallel
        scatter-gather; every hit within *radius* from every shard,
        k-merged (unbounded) into canonical order.  Same identity
        contract as :meth:`bulk_knn`."""
        if radius < 0:
            raise ValueError(f"radius must be >= 0, got {radius}")
        queries = list(queries)
        if not queries:
            return []
        with self._track_degradation():
            started = time.perf_counter()
            gathered = self._scatter(queries, "range", radius)
            return self._gather(
                gathered, len(queries), None, time.perf_counter() - started
            )

    # -- persistence (repro.store) --------------------------------------------

    def save(self, store: "StoreLike") -> "Path":
        """Snapshot every shard into the artifact *store* -- one
        immutable per-shard snapshot each (the shard's corpus
        fingerprint captures the layout), so partial corruption later
        costs one shard's rebuild, not the fleet's.  Returns the store
        root."""
        from ..store import ArtifactStore

        artifact_store = ArtifactStore.coerce(store)
        for shard in self._shards:
            artifact_store.save(shard.index)
        return artifact_store.root

    @classmethod
    def _parse_params(cls, params: Dict[str, Any]) -> Dict[str, Any]:
        """Normalise ``load(**params)`` keywords (the ``__init__``
        keyword set); unknown names raise ``TypeError`` exactly like the
        flat structures' key normalisers."""
        out = {
            "shards": params.pop("shards", None),
            "seed": int(params.pop("seed", 0)),
            "structure": str(params.pop("structure", "auto")),
            "structure_params": dict(params.pop("structure_params", None) or {}),
            "min_shard_items": params.pop("min_shard_items", None),
        }
        if params:
            raise TypeError(
                f"ShardedIndex.load got unexpected parameters {sorted(params)}"
            )
        return out

    @classmethod
    def _load_or_build_override(
        cls,
        items: Sequence[Any],
        distance: Callable[[Any, Any], float],
        store: "ArtifactStore",
        params: Dict[str, Any],
        *,
        save_on_miss: bool = False,
    ) -> "ShardedIndex":
        """The sharded ``load_or_build``: resolve the deterministic
        layout, then load-or-build every shard *independently* under the
        store's usual miss-vs-corruption semantics -- a corrupt shard
        snapshot rebuilds only that shard (loudly, via the
        ``store_load_failures`` ladder), the rest load with zero
        distance evaluations.  Called by
        :func:`repro.store.load_or_build` (and therefore by
        ``ShardedIndex.load`` and ``IndexServer.warm_start``)."""
        from ..store import load_or_build

        spec = cls._parse_params(dict(params))
        count = resolve_shard_count(
            len(items), spec["shards"], spec["min_shard_items"]
        )
        layout = partition_indices(len(items), count, spec["seed"])
        shard_indexes: List[NearestNeighborIndex[Any]] = []
        degradation: Dict[str, int] = {}
        for ids in layout:
            sub_items = [items[int(i)] for i in ids]
            sub_cls, sub_kwargs = _resolve_structure(
                spec["structure"], len(ids), spec["structure_params"]
            )
            shard = load_or_build(
                sub_cls,
                sub_items,
                distance,
                store,
                sub_kwargs,
                save_on_miss=save_on_miss,
            )
            for event, n in shard.last_degradation.items():
                degradation[event] = degradation.get(event, 0) + n
            shard_indexes.append(shard)
        index = cls._from_shards(
            items,
            distance,
            shard_indexes,
            layout,
            seed=spec["seed"],
            structure=spec["structure"],
            structure_params=spec["structure_params"],
        )
        index.last_degradation = degradation
        return index
