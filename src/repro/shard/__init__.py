"""Scatter-gather sharded query tier.

Partitions a corpus into size-balanced shards, builds an independent
pivot-table index per shard, and serves bulk queries by scattering
per-shard lockstep searches across the persistent engine worker pool
and k-merging the answers under the canonical ``(distance, index)``
order -- bit-identical to the equivalent unsharded index.

See :mod:`repro.shard.sharded` for the index, :mod:`repro.shard.merge`
for the merge kernel, and :mod:`repro.shard.scatter` for the worker
protocol.
"""

from .merge import k_merge
from .sharded import ShardedIndex, partition_indices, resolve_shard_count

__all__ = [
    "ShardedIndex",
    "k_merge",
    "partition_indices",
    "resolve_shard_count",
]
