"""Parallel scatter of per-shard searches onto the engine worker pool.

The master publishes each shard exactly once per publication generation:
the shard's interned twin matrices go through the existing
generation-verified shared-memory path
(:meth:`~repro.batch.runtime.EngineRuntime.publish_store`), and the
shard's *structure* -- pivot tables, AESA matrices, tree arrays, plus a
pickled blob holding the items, the distance's registry name and the
restore metadata -- rides a persistent
:class:`~repro.batch.runtime.ArraysToken` bundle.  A pool worker
receiving a shard task attaches both (cached for its lifetime, dropped
and re-attached when the publication generation advances), reconstructs
the shard index through the artifact-skeleton hooks (zero distance
evaluations), and runs the ordinary ``bulk_knn`` /
``bulk_range_search`` lockstep drivers in-process -- the engine's
``workers="auto"`` resolution is daemon-gated, so everything inside the
worker runs on the serial rung and returns values bit-identical to the
master running the same shard (the degradation-ladder contract).

Only per-query ``(local index, distance)`` hit lists and demanded
computation counts cross back; the master rebases local indices onto
the shard's global id map and k-merges (:mod:`repro.shard.merge`).

The ``shard_worker_fail`` fault site raises inside the worker task
(daemon-gated, like ``worker_crash``), which the sharded index answers
by re-running that shard serially in the master -- recorded under the
``shard_fallbacks`` degradation counter, results unchanged.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
    Type,
)

import numpy as np

from ..batch import runtime
from ..batch.runtime import ArraysToken, StoreToken
from ..index.base import NearestNeighborIndex
from ..tools import knobs

__all__ = [
    "ShardPublication",
    "parallel_enabled",
    "publish_shard",
    "run_shard_local",
    "shard_task",
]

#: One query's answer in transit: canonically sorted ``(local index,
#: distance)`` hits plus the demanded distance-computation count.
QueryHits = Tuple[List[Tuple[int, float]], int]

#: One shard task's answer: a :data:`QueryHits` per query.
TaskResult = List[QueryHits]

#: Structure classes a worker may reconstruct, by class name.  An
#: explicit allow-list: the blob names one of these, never an arbitrary
#: pickled class.
_STRUCTURES: Dict[str, Type[NearestNeighborIndex[Any]]] = {}


def _structure_class(name: str) -> Type[NearestNeighborIndex[Any]]:
    if not _STRUCTURES:
        from ..index import (
            AesaIndex,
            BKTreeIndex,
            ExhaustiveIndex,
            LaesaIndex,
            VPTreeIndex,
        )

        for cls in (
            ExhaustiveIndex,
            LaesaIndex,
            AesaIndex,
            BKTreeIndex,
            VPTreeIndex,
        ):
            _STRUCTURES[cls.__name__] = cls
    return _STRUCTURES[name]


def parallel_enabled() -> bool:
    """Whether sharded scatters fan out over the persistent worker pool;
    ``REPRO_SHARD_PARALLEL=0`` runs every shard serially in the master
    (read per call; results are bit-identical either way)."""
    return knobs.get_flag("REPRO_SHARD_PARALLEL")


@dataclass(frozen=True)
class ShardPublication:
    """One shard's shared-memory presence: the interned corpus block
    (:class:`StoreToken`) plus the structure bundle
    (:class:`ArraysToken`, blob + structure arrays)."""

    blob: ArraysToken
    store: StoreToken


def _restore_params(index: NearestNeighborIndex[Any]) -> Dict[str, Any]:
    """Runtime-only restore parameters the worker-side skeleton needs
    (mirrors what :meth:`_restore_artifact` reads from ``load``
    keywords).  Only AESA carries one: its bulk-sweep gate, which
    changes batching but never results."""
    from ..index import AesaIndex

    if isinstance(index, AesaIndex):
        return {"bulk_sweep_max_items": int(index._BULK_SWEEP_MAX_ITEMS)}
    return {}


def publish_shard(
    index: NearestNeighborIndex[Any], key: str, distance_name: str
) -> Optional[ShardPublication]:
    """Publish one built shard for worker-side reconstruction.

    Returns ``None`` when the shard has no interned corpus or any
    segment publication fails -- the caller then scatters serially.
    The corpus block is cached per corpus (and finalizer-released) by
    :meth:`publish_store`; the structure bundle is persistent under the
    caller's *key* so workers cache the rebuilt index for their
    lifetime, with generation verification.
    """
    corpus = index._corpus
    if corpus is None:
        return None
    rt = runtime.get_runtime()
    store_token = rt.publish_store(corpus.store())
    if store_token is None:
        return None
    arrays: Dict[str, np.ndarray] = {
        f"arr:{name}": arr for name, arr in index._artifact_arrays().items()
    }
    blob = pickle.dumps(
        {
            "cls": type(index).__name__,
            "distance": distance_name,
            "items": index.items,
            "meta": index._artifact_meta(),
            "params": _restore_params(index),
            "preprocessing": index.preprocessing_computations,
        }
    )
    arrays["blob"] = np.frombuffer(blob, dtype=np.uint8)
    token = rt.publish_arrays(arrays, persistent=True, key=key)
    if token is None:
        return None
    return ShardPublication(token, store_token)


def _distance_from_name(name: str) -> Callable[[Any, Any], float]:
    """The exact function object the master resolved *name* from, so the
    worker's shard searches evaluate the very same scalar code."""
    from ..batch.engine import _LEV_INT
    from ..core import registry
    from ..core.levenshtein import levenshtein_distance

    if name == _LEV_INT:
        return levenshtein_distance
    fn: Callable[[Any, Any], float] = registry.get_distance(name)
    return fn


#: Worker-lifetime cache of reconstructed shard indexes:
#: bundle key -> (publication generation, index).
_WORKER_SHARDS: Dict[str, Tuple[int, NearestNeighborIndex[Any]]] = {}


def _attached_shard(
    blob_token: ArraysToken, store_token: StoreToken
) -> NearestNeighborIndex[Any]:
    """The shard index behind *blob_token*, rebuilt on first sight and
    cached for this worker's lifetime (re-rebuilt when the publication
    generation advances -- the old segments are gone)."""
    cached = _WORKER_SHARDS.get(blob_token.key)
    if cached is not None and cached[0] == blob_token.generation:
        return cached[1]
    _WORKER_SHARDS.pop(blob_token.key, None)
    arrays, handles = runtime.attach_arrays(blob_token)
    try:
        spec = pickle.loads(arrays["blob"].tobytes())
    finally:
        runtime.release_attachment(handles)
    corpus_arrays, _ = runtime._attach_block(store_token.corpus)
    from ..batch.corpus import InternedCorpus

    corpus = InternedCorpus.from_arrays(spec["items"], *corpus_arrays)
    cls = _structure_class(spec["cls"])
    index = cls._artifact_skeleton(
        spec["items"], _distance_from_name(spec["distance"]), corpus
    )
    structure = {
        name[4:]: arr for name, arr in arrays.items() if name.startswith("arr:")
    }
    index._restore_artifact(structure, spec["meta"], spec["params"])
    index.preprocessing_computations = int(spec["preprocessing"])
    _WORKER_SHARDS[blob_token.key] = (blob_token.generation, index)
    return index


def run_shard_local(
    index: NearestNeighborIndex[Any],
    queries: Sequence[Any],
    mode: str,
    arg: float,
) -> TaskResult:
    """Run one shard's bulk search and flatten to :data:`TaskResult`.

    Shared by the worker task and the master's serial fallback, so both
    paths produce byte-equal payloads by construction.  ``knn`` clamps
    ``k`` to the shard size (a shard cannot yield more hits than items;
    the global top-k only needs each shard's best ``k``).
    """
    if mode == "knn":
        per_query = index.bulk_knn(queries, min(int(arg), len(index.items)))
    else:
        per_query = index.bulk_range_search(queries, arg)
    return [
        (
            [(result.index, result.distance) for result in results],
            stats.distance_computations,
        )
        for results, stats in per_query
    ]


def shard_task(
    args: Tuple[ArraysToken, StoreToken, str, float, List[Any]],
) -> TaskResult:
    """Pool-worker task: reconstruct (or reuse) the shard behind the
    tokens and answer the whole query batch on it, serially in-process
    (the engine's daemon gate guarantees no nested pools)."""
    from ..batch import faults

    faults.worker_task()
    blob_token, store_token, mode, arg, queries = args
    import multiprocessing

    if multiprocessing.current_process().daemon and faults.fires(
        "shard_worker_fail"
    ):
        raise faults.FaultInjected("shard_worker_fail")
    index = _attached_shard(blob_token, store_token)
    return run_shard_local(index, queries, mode, arg)
