"""Vantage-point tree [Yianilos 1993] for arbitrary metrics.

The real-valued counterpart of the BK-tree: each node picks a vantage
point, computes the median distance ``mu`` of its subset, and splits the
subset into inside (``d <= mu``) and outside (``d > mu``) children; the
triangle inequality prunes whole subtrees at query time.  Included as an
ablation point next to LAESA/AESA -- unlike LAESA it needs no pivot-count
parameter, but its pruning uses one vantage point per level instead of a
global pivot set.
"""

from __future__ import annotations

import heapq
import random
import statistics
from typing import Any, Callable, Generator, List, Optional, Sequence, Tuple

from .base import (
    NearestNeighborIndex,
    Request,
    RequestGenerator,
    SearchResult,
    canonical_key,
)

__all__ = ["VPTreeIndex"]


class _Node:
    __slots__ = ("index", "radius", "inside", "outside")

    def __init__(
        self,
        index: int,
        radius: float,
        inside: Optional["_Node"],
        outside: Optional["_Node"],
    ) -> None:
        self.index = index
        self.radius = radius
        self.inside = inside
        self.outside = outside


class VPTreeIndex(NearestNeighborIndex):
    """VP-tree with median splits and random vantage points."""

    def __init__(
        self,
        items: Sequence[Any],
        distance: Callable[[Any, Any], float],
        rng: Optional[random.Random] = None,
    ) -> None:
        super().__init__(items, distance)
        self._rng = rng if rng is not None else random.Random(0x7EE5)
        self._root = self._build(list(range(len(self.items))))
        self.preprocessing_computations = self._counter.take()

    def _build(self, indices: List[int]) -> Optional["_Node"]:
        if not indices:
            return None
        vantage = indices[self._rng.randrange(len(indices))]
        rest = [i for i in indices if i != vantage]
        if not rest:
            return _Node(vantage, 0.0, None, None)
        distances = [self._counter(self.items[vantage], self.items[i]) for i in rest]
        mu = statistics.median(distances)
        inside = [i for i, d in zip(rest, distances) if d <= mu]
        outside = [i for i, d in zip(rest, distances) if d > mu]
        return _Node(vantage, mu, self._build(inside), self._build(outside))

    @staticmethod
    def _node_limit(node: "_Node", search_radius: float) -> float:
        """Largest vantage distance that still matters at *search_radius*.

        Beyond ``node.radius + search_radius`` the vantage point is no hit,
        the inside child is unreachable (``d - search_radius > mu``) and
        the outside child must be visited regardless -- so the early-exit
        twin may stop there.  Leaves collapse to ``search_radius``.
        """
        if node.inside is None and node.outside is None:
            return search_radius
        return node.radius + search_radius

    def _range_requests(self, radius: float) -> RequestGenerator:
        """Subtree-pruned range query as a request generator.

        The recursion yields its comparisons through ``yield from``, so
        the scalar driver answers them with ``within`` and the lockstep
        bulk driver groups them -- one per still-active query -- into
        banded batch-kernel calls; requests are not precomputable
        (``cache_pos=None``).
        """
        hits: List[SearchResult] = []

        def visit(
            node: Optional["_Node"],
        ) -> Generator[Request, Optional[float], None]:
            if node is None:
                return
            limit = self._node_limit(node, radius)
            d = yield (node.index, limit, None)
            if d > limit:
                yield from visit(node.outside)  # far side is the only
                return  # reachable one
            if d <= radius:
                hits.append(
                    SearchResult(
                        item=self.items[node.index], index=node.index, distance=d
                    )
                )
            if d - radius <= node.radius:
                yield from visit(node.inside)
            if d + radius > node.radius:
                yield from visit(node.outside)

        yield from visit(self._root)
        hits.sort(key=canonical_key)
        return hits

    def _search(self, query: Any, k: int) -> List[SearchResult]:
        best: List[Tuple[float, int]] = []

        def kth_best() -> float:
            return -best[0][0] if len(best) == k else float("inf")

        def visit(node: Optional["_Node"]) -> None:
            if node is None:
                return
            limit = self._node_limit(node, kth_best())
            d = self._counter.within(query, self.items[node.index], limit)
            if d > limit:
                # Too far to enter the heap or reach the inside child; the
                # outside child is still reachable (d > mu by a margin).
                visit(node.outside)
                return
            entry = (-d, -node.index)
            if len(best) < k:
                heapq.heappush(best, entry)
            elif entry > best[0]:
                # canonical (distance, index) tie-breaking: equal-distance
                # entries keep the smaller index, matching every other
                # index structure
                heapq.heapreplace(best, entry)
            # visit the likelier side first, prune the other when possible
            # (kth_best() is re-evaluated after each child visit on purpose:
            # the radius may shrink while a subtree is explored)
            if d <= node.radius:
                visit(node.inside)
                if d + kth_best() > node.radius:
                    visit(node.outside)
            else:
                visit(node.outside)
                if d - kth_best() <= node.radius:
                    visit(node.inside)

        visit(self._root)
        ordered = sorted((-nd, -nidx) for nd, nidx in best)
        return [
            SearchResult(item=self.items[idx], index=idx, distance=d)
            for d, idx in ordered
        ]
