"""Vantage-point tree [Yianilos 1993] for arbitrary metrics.

The real-valued counterpart of the BK-tree: each node picks a vantage
point, computes the median distance ``mu`` of its subset, and splits the
subset into inside (``d <= mu``) and outside (``d > mu``) children; the
triangle inequality prunes whole subtrees at query time.  Included as an
ablation point next to LAESA/AESA -- unlike LAESA it needs no pivot-count
parameter, but its pruning uses one vantage point per level instead of a
global pivot set.
"""

from __future__ import annotations

import heapq
import random
import statistics
from typing import (
    Any,
    Callable,
    Dict,
    Generator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from .base import (
    NearestNeighborIndex,
    Request,
    RequestGenerator,
    SearchResult,
    canonical_key,
)

__all__ = ["VPTreeIndex"]


class _Node:
    __slots__ = ("index", "radius", "inside", "outside")

    def __init__(
        self,
        index: int,
        radius: float,
        inside: Optional["_Node"],
        outside: Optional["_Node"],
    ) -> None:
        self.index = index
        self.radius = radius
        self.inside = inside
        self.outside = outside


class VPTreeIndex(NearestNeighborIndex):
    """VP-tree with median splits and random vantage points."""

    def __init__(
        self,
        items: Sequence[Any],
        distance: Callable[[Any, Any], float],
        rng: Optional[random.Random] = None,
    ) -> None:
        super().__init__(items, distance)
        self._rng = rng if rng is not None else random.Random(0x7EE5)
        self._root = self._build(list(range(len(self.items))))
        self.preprocessing_computations = self._counter.take()

    def _build(self, indices: List[int]) -> Optional["_Node"]:
        if not indices:
            return None
        vantage = indices[self._rng.randrange(len(indices))]
        rest = [i for i in indices if i != vantage]
        if not rest:
            return _Node(vantage, 0.0, None, None)
        distances = [self._counter(self.items[vantage], self.items[i]) for i in rest]
        mu = statistics.median(distances)
        inside = [i for i, d in zip(rest, distances) if d <= mu]
        outside = [i for i, d in zip(rest, distances) if d > mu]
        return _Node(vantage, mu, self._build(inside), self._build(outside))

    @classmethod
    def _artifact_key_params(cls, params: Dict[str, Any]) -> Dict[str, Any]:
        params = dict(params)
        # the rng only seeds which vantage points a rebuild would pick;
        # any built tree answers queries exactly, so it stays out of the key
        params.pop("rng", None)
        if params:
            raise TypeError(
                f"VPTreeIndex.load got unexpected parameters {sorted(params)}"
            )
        return {}

    def _artifact_arrays(self) -> Dict[str, np.ndarray]:
        """Serialize the tree in preorder as ``(item_index, inside_row,
        outside_row)`` rows plus a parallel radius vector.  Preorder
        guarantees every child row number exceeds its parent's, which the
        loader exploits to rebuild bottom-up in one reverse pass.
        """
        rows: List[Tuple[int, int, int]] = []
        radii: List[float] = []

        def emit(node: Optional["_Node"]) -> int:
            if node is None:
                return -1
            row = len(rows)
            rows.append((node.index, -1, -1))
            radii.append(node.radius)
            inside = emit(node.inside)
            outside = emit(node.outside)
            rows[row] = (node.index, inside, outside)
            return row

        emit(self._root)
        return {
            "tree_nodes": np.asarray(rows, dtype=np.int64).reshape(len(rows), 3),
            "tree_radii": np.asarray(radii, dtype=float),
        }

    def _restore_artifact(
        self,
        arrays: Mapping[str, np.ndarray],
        meta: Mapping[str, Any],
        params: Mapping[str, Any],
    ) -> None:
        rows = np.asarray(arrays["tree_nodes"], dtype=np.int64)
        radii = np.asarray(arrays["tree_radii"], dtype=float)
        n = len(self.items)
        if rows.ndim != 2 or rows.shape[1] != 3 or rows.shape[0] != n:
            raise ValueError(
                f"VP-tree payload shape {rows.shape} does not fit {n} items"
            )
        if radii.shape != (n,):
            raise ValueError(
                f"VP-tree radius vector shape {radii.shape} does not fit {n} items"
            )
        built: List[Optional[_Node]] = [None] * n

        def child(row: int, slot: int) -> Optional["_Node"]:
            if slot == -1:
                return None
            if not row < slot < n or built[slot] is None:
                raise ValueError(
                    f"VP-tree row {row} points at invalid child row {slot}"
                )
            return built[slot]

        for row in range(n - 1, -1, -1):
            item_index, inside_row, outside_row = (int(v) for v in rows[row])
            if not 0 <= item_index < n:
                raise ValueError(f"VP-tree row {row} points at item {item_index}")
            built[row] = _Node(
                item_index,
                float(radii[row]),
                child(row, inside_row),
                child(row, outside_row),
            )
        self._root = built[0] if n else None
        # loaded trees never re-enter _build, so self._rng is left unset
        # on purpose: touching it would imply a rebuild path that the
        # restored structure does not have

    @staticmethod
    def _node_limit(node: "_Node", search_radius: float) -> float:
        """Largest vantage distance that still matters at *search_radius*.

        Beyond ``node.radius + search_radius`` the vantage point is no hit,
        the inside child is unreachable (``d - search_radius > mu``) and
        the outside child must be visited regardless -- so the early-exit
        twin may stop there.  Leaves collapse to ``search_radius``.
        """
        if node.inside is None and node.outside is None:
            return search_radius
        return node.radius + search_radius

    def _range_requests(self, radius: float) -> RequestGenerator:
        """Subtree-pruned range query as a request generator.

        The recursion yields its comparisons through ``yield from``, so
        the scalar driver answers them with ``within`` and the lockstep
        bulk driver groups them -- one per still-active query -- into
        banded batch-kernel calls; requests are not precomputable
        (``cache_pos=None``).
        """
        hits: List[SearchResult] = []

        def visit(
            node: Optional["_Node"],
        ) -> Generator[Request, Optional[float], None]:
            if node is None:
                return
            limit = self._node_limit(node, radius)
            d = yield (node.index, limit, None)
            if d > limit:
                yield from visit(node.outside)  # far side is the only
                return  # reachable one
            if d <= radius:
                hits.append(
                    SearchResult(
                        item=self.items[node.index], index=node.index, distance=d
                    )
                )
            if d - radius <= node.radius:
                yield from visit(node.inside)
            if d + radius > node.radius:
                yield from visit(node.outside)

        yield from visit(self._root)
        hits.sort(key=canonical_key)
        return hits

    def _search(self, query: Any, k: int) -> List[SearchResult]:
        best: List[Tuple[float, int]] = []

        def kth_best() -> float:
            return -best[0][0] if len(best) == k else float("inf")

        def visit(node: Optional["_Node"]) -> None:
            if node is None:
                return
            limit = self._node_limit(node, kth_best())
            d = self._counter.within(query, self.items[node.index], limit)
            if d > limit:
                # Too far to enter the heap or reach the inside child; the
                # outside child is still reachable (d > mu by a margin).
                visit(node.outside)
                return
            entry = (-d, -node.index)
            if len(best) < k:
                heapq.heappush(best, entry)
            elif entry > best[0]:
                # canonical (distance, index) tie-breaking: equal-distance
                # entries keep the smaller index, matching every other
                # index structure
                heapq.heapreplace(best, entry)
            # visit the likelier side first, prune the other when possible
            # (kth_best() is re-evaluated after each child visit on purpose:
            # the radius may shrink while a subtree is explored)
            if d <= node.radius:
                visit(node.inside)
                if d + kth_best() > node.radius:
                    visit(node.outside)
            else:
                visit(node.outside)
                if d - kth_best() <= node.radius:
                    visit(node.inside)

        visit(self._root)
        ordered = sorted((-nd, -nidx) for nd, nidx in best)
        return [
            SearchResult(item=self.items[idx], index=idx, distance=d)
            for d, idx in ordered
        ]
