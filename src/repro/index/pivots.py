"""Pivot (base-prototype) selection strategies for LAESA.

LAESA's preprocessing chooses a subset of *base prototypes*; the quality of
that choice drives how tight the triangle-inequality lower bounds are.
The original paper [Micó, Oncina & Vidal 1994] uses a greedy *maximum of
minimum distances* rule; random and max-sum selection are provided for the
ablation benchmark.

Every strategy returns ``(pivot_indices, rows)`` where ``rows[t]`` is the
vector of distances from pivot ``t`` to every item -- the rows double as
LAESA's preprocessed matrix, so selection costs no extra distance
computations beyond the ``n_pivots * n`` the matrix needs anyway.  Each
row is one pair-batched engine sweep, which since the engine's
``workers="auto"`` default also shards across a process pool on machines
and row sizes where the pool pays for itself.
"""

from __future__ import annotations

import random
from typing import Any, Callable, List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["select_pivots", "PIVOT_STRATEGIES"]

Distance = Callable[[Any, Any], float]


def _distance_row(
    items: Sequence[Any], distance: Distance, pivot_index: int
) -> np.ndarray:
    pivot = items[pivot_index]
    if hasattr(distance, "many"):
        # CountingDistance: one pair-batched sweep instead of n scalar
        # calls (same values, same reported computation count).
        row = distance.many([(pivot, item) for item in items])
    else:
        # Raw callables go through the engine directly (batched when the
        # function is a registered distance, scalar fallback otherwise).
        from ..batch import distances_from

        row = distances_from(distance, pivot, items)
    return np.asarray(row, dtype=float)


def _greedy(
    items: Sequence[Any],
    distance: Distance,
    count: int,
    rng: random.Random,
    combine: str,
) -> Tuple[List[int], np.ndarray]:
    """Greedy pivot selection maximising the min (or sum) of distances to
    the already-chosen pivots; the first pivot is drawn at random."""
    n = len(items)
    chosen = [rng.randrange(n)]
    rows = [_distance_row(items, distance, chosen[0])]
    score = rows[0].copy()  # min and sum coincide with one pivot chosen
    while len(chosen) < count:
        score[chosen] = -np.inf  # never re-pick a pivot
        nxt = int(np.argmax(score))
        chosen.append(nxt)
        row = _distance_row(items, distance, nxt)
        rows.append(row)
        if combine == "min":
            np.minimum(score, row, out=score)
        else:
            score = score + row
    return chosen, np.vstack(rows)


def _random(
    items: Sequence[Any],
    distance: Distance,
    count: int,
    rng: random.Random,
) -> Tuple[List[int], np.ndarray]:
    chosen = rng.sample(range(len(items)), count)
    rows = np.vstack([_distance_row(items, distance, p) for p in chosen])
    return chosen, rows


def select_pivots(
    items: Sequence[Any],
    distance: Distance,
    count: int,
    strategy: str = "maxmin",
    rng: Optional[random.Random] = None,
) -> Tuple[List[int], np.ndarray]:
    """Choose *count* pivots from *items* and return their distance rows.

    ``strategy`` is one of ``"maxmin"`` (LAESA's default: each new pivot
    maximises its minimum distance to the chosen set), ``"maxsum"`` (ditto
    with the sum), or ``"random"``.
    """
    if count < 0:
        raise ValueError(f"pivot count must be >= 0, got {count}")
    if count > len(items):
        raise ValueError(
            f"cannot select {count} pivots from {len(items)} items"
        )
    if count == 0:
        return [], np.zeros((0, len(items)))
    rng = rng if rng is not None else random.Random(0x5EED)
    if strategy == "maxmin":
        return _greedy(items, distance, count, rng, combine="min")
    if strategy == "maxsum":
        return _greedy(items, distance, count, rng, combine="sum")
    if strategy == "random":
        return _random(items, distance, count, rng)
    raise ValueError(
        f"unknown pivot strategy {strategy!r}; known: {sorted(PIVOT_STRATEGIES)}"
    )


#: Names accepted by :func:`select_pivots` (for CLIs and benchmarks).
PIVOT_STRATEGIES = ("maxmin", "maxsum", "random")
