"""Pivot (base-prototype) selection strategies for LAESA.

LAESA's preprocessing chooses a subset of *base prototypes*; the quality of
that choice drives how tight the triangle-inequality lower bounds are.
The original paper [Micó, Oncina & Vidal 1994] uses a greedy *maximum of
minimum distances* rule; random and max-sum selection are provided for the
ablation benchmark.

Every strategy returns ``(pivot_indices, rows)`` where ``rows[t]`` is the
vector of distances from pivot ``t`` to every item -- the rows double as
LAESA's preprocessed matrix, so selection costs no extra distance
computations beyond the ``n_pivots * n`` the matrix needs anyway.  Each
row is one pair-batched engine sweep, which since the engine's
``workers="auto"`` default also shards across a process pool on machines
and row sizes where the pool pays for itself.
"""

from __future__ import annotations

import random
from typing import Any, Callable, List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["select_pivots", "select_pivots_from_matrix", "PIVOT_STRATEGIES"]

Distance = Callable[[Any, Any], float]


def _distance_row(
    items: Sequence[Any],
    distance: Distance,
    pivot_index: int,
    store: Optional[Any] = None,
) -> np.ndarray:
    if store is not None and hasattr(distance, "many_ids"):
        # Interned corpus: the pivot row is an id grid against the
        # already-encoded matrices -- no pair list, no re-encoding, and
        # sharded fan-out ships only id arrays against the shared-memory
        # publication.  Values and reported computation counts are
        # bit-identical to the raw-pair sweep (asserted by the tests).
        n = len(items)
        return np.asarray(
            distance.many_ids(
                store,
                np.full(n, pivot_index, dtype=np.int64),
                np.arange(n, dtype=np.int64),
            ),
            dtype=float,
        )
    pivot = items[pivot_index]
    if hasattr(distance, "many"):
        # CountingDistance: one pair-batched sweep instead of n scalar
        # calls (same values, same reported computation count).
        row = distance.many([(pivot, item) for item in items])
    else:
        # Raw callables go through the engine directly (batched when the
        # function is a registered distance, scalar fallback otherwise).
        from ..batch import distances_from

        row = distances_from(distance, pivot, items)
    return np.asarray(row, dtype=float)


def _greedy(
    n: int,
    row_of: Callable[[int], np.ndarray],
    count: int,
    rng: random.Random,
    combine: str,
) -> Tuple[List[int], np.ndarray]:
    """Greedy pivot selection maximising the min (or sum) of distances to
    the already-chosen pivots; the first pivot is drawn at random.

    ``row_of(i)`` supplies the distance row of item *i* -- evaluated
    through the engine by :func:`select_pivots`, read from a precomputed
    matrix by :func:`select_pivots_from_matrix`.  Sharing the loop keeps
    the two entry points' selection decisions identical by construction.
    """
    chosen = [rng.randrange(n)]
    rows = [row_of(chosen[0])]
    score = rows[0].copy()  # min and sum coincide with one pivot chosen
    while len(chosen) < count:
        score[chosen] = -np.inf  # never re-pick a pivot
        nxt = int(np.argmax(score))
        chosen.append(nxt)
        row = row_of(nxt)
        rows.append(row)
        if combine == "min":
            np.minimum(score, row, out=score)
        else:
            score = score + row
    return chosen, np.vstack(rows)


def _random(
    n: int,
    row_of: Callable[[int], np.ndarray],
    count: int,
    rng: random.Random,
) -> Tuple[List[int], np.ndarray]:
    chosen = rng.sample(range(n), count)
    rows = np.vstack([row_of(p) for p in chosen])
    return chosen, rows


def _select(
    n: int,
    row_of: Callable[[int], np.ndarray],
    count: int,
    strategy: str,
    rng: Optional[random.Random],
) -> Tuple[List[int], np.ndarray]:
    """Validation + strategy dispatch shared by both selection fronts."""
    if count < 0:
        raise ValueError(f"pivot count must be >= 0, got {count}")
    if count > n:
        raise ValueError(f"cannot select {count} pivots from {n} items")
    if count == 0:
        return [], np.zeros((0, n))
    rng = rng if rng is not None else random.Random(0x5EED)
    if strategy == "maxmin":
        return _greedy(n, row_of, count, rng, combine="min")
    if strategy == "maxsum":
        return _greedy(n, row_of, count, rng, combine="sum")
    if strategy == "random":
        return _random(n, row_of, count, rng)
    raise ValueError(
        f"unknown pivot strategy {strategy!r}; known: {sorted(PIVOT_STRATEGIES)}"
    )


def select_pivots(
    items: Sequence[Any],
    distance: Distance,
    count: int,
    strategy: str = "maxmin",
    rng: Optional[random.Random] = None,
    store: Optional[Any] = None,
) -> Tuple[List[int], np.ndarray]:
    """Choose *count* pivots from *items* and return their distance rows.

    ``strategy`` is one of ``"maxmin"`` (LAESA's default: each new pivot
    maximises its minimum distance to the chosen set), ``"maxsum"`` (ditto
    with the sum), or ``"random"``.  *store* is an optional
    :class:`~repro.batch.corpus.PairStore` covering *items* (ids ``[0,
    len(items))``); when given, each pivot row dispatches as an id grid
    against the interned corpus instead of a raw pair list -- identical
    rows, identical counts, none of the per-row re-encoding.
    """
    return _select(
        len(items),
        lambda idx: _distance_row(items, distance, idx, store),
        count,
        strategy,
        rng,
    )


def select_pivots_from_matrix(
    matrix: np.ndarray,
    count: int,
    strategy: str = "maxmin",
    rng: Optional[random.Random] = None,
) -> Tuple[List[int], np.ndarray]:
    """:func:`select_pivots` reading rows from a precomputed matrix.

    ``matrix[i, j]`` must hold ``d(items[i], items[j])`` (e.g. a slice of
    a :func:`~repro.batch.pairwise_matrix_memmap` over a training pool).
    Selection decisions are identical to :func:`select_pivots` with the
    same *rng* -- the greedy rules only consume distance rows, and the
    engine-evaluated matrix is bit-identical to scalar calls -- but zero
    distances are computed, which is what lets a pivot-count sweep
    (Figures 3/4) persist one pool matrix and slice per-trial submatrices
    instead of re-evaluating every trial's pivot rows.

    Returns ``(pivot_indices, rows)`` with ``rows[t] = matrix[pivot_t]``
    as a float array, directly usable by
    :meth:`~repro.index.laesa.LaesaIndex.from_pivots`.
    """
    matrix = np.asarray(matrix, dtype=float)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise ValueError(
            f"pivot matrix must be square, got shape {matrix.shape}"
        )
    return _select(
        matrix.shape[0], lambda idx: matrix[idx], count, strategy, rng
    )


#: Names accepted by :func:`select_pivots` (for CLIs and benchmarks).
PIVOT_STRATEGIES = ("maxmin", "maxsum", "random")
