"""BK-tree [Burkhard & Keller 1973] for *integer-valued* metrics.

A classic triangle-inequality structure tailored to discrete metrics such
as the plain Levenshtein distance: each node stores children keyed by
their exact (integer) distance from the node, and a query with current
search radius ``r`` only needs to visit children whose key lies in
``[d - r, d + r]``.

Included as an ablation point: the paper argues its LAESA results "apply
in similar cases" of triangle-inequality-based methods, and the BK-tree is
the most widely deployed such method for edit distances.  It does not
apply to the normalised (real-valued) distances -- the constructor rejects
them loudly rather than silently degrading.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from .base import (
    NearestNeighborIndex,
    RequestGenerator,
    SearchResult,
    canonical_key,
)

__all__ = ["BKTreeIndex"]


class _Node:
    __slots__ = ("index", "children")

    def __init__(self, index: int) -> None:
        self.index = index
        self.children: Dict[int, "_Node"] = {}


class BKTreeIndex(NearestNeighborIndex):
    """BK-tree over an integer metric (e.g. ``levenshtein_distance``)."""

    def __init__(
        self, items: Sequence[Any], distance: Callable[[Any, Any], float]
    ) -> None:
        super().__init__(items, distance)
        self._root = _Node(0)
        for idx in range(1, len(self.items)):
            self._insert(idx)
        self.preprocessing_computations = self._counter.take()

    def _insert(self, idx: int) -> None:
        node = self._root
        item = self.items[idx]
        while True:
            d = self._counter(item, self.items[node.index])
            key = self._integer(d)
            if key == 0 and item == self.items[node.index]:
                # exact duplicate: hang it under key 0 like any child
                pass
            child = node.children.get(key)
            if child is None:
                node.children[key] = _Node(idx)
                return
            node = child

    def _artifact_arrays(self) -> Dict[str, np.ndarray]:
        """Serialize the tree as ``(item_index, parent_row, key)`` rows.

        Breadth-first order, with each node's children emitted in dict
        insertion order: search pushes children onto a stack in that
        order, so replaying it keeps traversal -- and therefore the
        early-exit limits and per-query distance counts -- bit-identical.
        """
        rows: List[Tuple[int, int, int]] = []
        queue = deque([(self._root, -1, 0)])
        while queue:
            node, parent_row, key = queue.popleft()
            row = len(rows)
            rows.append((node.index, parent_row, key))
            for child_key, child in node.children.items():
                queue.append((child, row, child_key))
        return {"tree_nodes": np.asarray(rows, dtype=np.int64)}

    def _restore_artifact(
        self,
        arrays: Mapping[str, np.ndarray],
        meta: Mapping[str, Any],
        params: Mapping[str, Any],
    ) -> None:
        rows = np.asarray(arrays["tree_nodes"], dtype=np.int64)
        n = len(self.items)
        if rows.ndim != 2 or rows.shape[1] != 3 or rows.shape[0] != n:
            raise ValueError(
                f"BK-tree payload shape {rows.shape} does not fit {n} items"
            )
        built: List[_Node] = []
        root: Optional[_Node] = None
        for row in range(n):
            item_index, parent_row, key = (int(v) for v in rows[row])
            if not 0 <= item_index < n:
                raise ValueError(f"BK-tree row {row} points at item {item_index}")
            node = _Node(item_index)
            if parent_row == -1:
                if root is not None:
                    raise ValueError("BK-tree payload has multiple roots")
                root = node
            elif 0 <= parent_row < row:
                # BFS emission guarantees parents precede children, so
                # appending in row order replays dict insertion order
                built[parent_row].children[key] = node
            else:
                raise ValueError(
                    f"BK-tree row {row} has invalid parent {parent_row}"
                )
            built.append(node)
        if root is None:
            raise ValueError("BK-tree payload has no root")
        self._root = root

    @staticmethod
    def _integer(d: float) -> int:
        key = int(round(d))
        if abs(d - key) > 1e-9:
            raise ValueError(
                f"BK-tree requires an integer-valued metric; got distance {d}"
            )
        return key

    @staticmethod
    def _node_limit(node: "_Node", radius: float) -> float:
        """Largest distance at which *node* still matters for *radius*.

        A hit needs ``d <= radius``; visiting a child keyed ``c`` needs
        ``|d - c| <= radius``, i.e. ``d <= c + radius``.  Beyond
        ``max(children) + radius`` the exact value of ``d`` is irrelevant,
        so the early-exit twin may stop there -- on leaves that collapses
        to ``radius`` itself.
        """
        if node.children:
            return max(radius, max(node.children) + radius)
        return radius

    def _range_requests(self, radius: float) -> RequestGenerator:
        """Classic BK-tree range query as a request generator: visit
        children whose key lies in ``[d - radius, d + radius]``.  Every
        request carries the node's early-exit limit, so both the scalar
        driver (``within``) and the lockstep bulk driver (banded batch
        kernels) may stop each DP at the point the traversal stops
        caring; requests are not precomputable (``cache_pos=None``).
        """
        hits: List[SearchResult] = []
        stack = [self._root]
        while stack:
            node = stack.pop()
            limit = self._node_limit(node, radius)
            d = yield (node.index, limit, None)
            if d > limit:
                continue  # no hit, and no child interval can be reached
            if d <= radius:
                hits.append(
                    SearchResult(
                        item=self.items[node.index], index=node.index, distance=d
                    )
                )
            key = self._integer(d)
            for child_key, child in node.children.items():
                if abs(key - child_key) <= radius:
                    stack.append(child)
        hits.sort(key=canonical_key)
        return hits

    def _search(self, query: Any, k: int) -> List[SearchResult]:
        best: List[Tuple[float, int]] = []

        def kth_best() -> float:
            return -best[0][0] if len(best) == k else float("inf")

        stack = [self._root]
        while stack:
            node = stack.pop()
            limit = self._node_limit(node, kth_best())
            d = self._counter.within(query, self.items[node.index], limit)
            if d > limit:
                continue  # cannot enter the heap nor reach any child
            entry = (-d, -node.index)
            if len(best) < k:
                heapq.heappush(best, entry)
            elif entry > best[0]:
                # canonical (distance, index) tie-breaking, shared by all
                # index structures: equal distances keep the smaller index
                heapq.heapreplace(best, entry)
            radius = kth_best()
            key = self._integer(d)
            for child_key, child in node.children.items():
                # child subtree distances from node are exactly child_key,
                # so their distance from the query is >= |d - child_key|
                if abs(key - child_key) <= radius:
                    stack.append(child)
        ordered = sorted((-nd, -nidx) for nd, nidx in best)
        return [
            SearchResult(item=self.items[idx], index=idx, distance=d)
            for d, idx in ordered
        ]
