"""Exhaustive (linear-scan) nearest-neighbour search.

The baseline of Table 2's right column: computes the distance from the
query to every indexed item.  Needs no metric properties, so it is the
ground truth every triangle-inequality-based index is validated against.

The scan is fed through the pair-batched engine
(:meth:`~repro.index.base.CountingDistance.many`), so the ``n`` distance
computations of one query run as a handful of stacked anti-diagonal
sweeps instead of ``n`` interpreted DP loops -- same results, same
reported computation count, a fraction of the wall-clock.
"""

from __future__ import annotations

import heapq
import time
from typing import List, Sequence, Tuple

import numpy as np

from .base import NearestNeighborIndex, SearchResult, SearchStats

__all__ = ["ExhaustiveIndex"]


class ExhaustiveIndex(NearestNeighborIndex):
    """Linear scan over all items; ``n`` distance computations per query."""

    def _search(self, query, k: int) -> List[SearchResult]:
        distances = self._counter.many([(query, item) for item in self.items])
        return self._row_results(distances, k)

    def _row_results(self, row: np.ndarray, k: int) -> List[SearchResult]:
        # Replay the historical heap scan over the precomputed distances so
        # tie-breaking on equal distances is unchanged: new items enter
        # only when strictly better, and eviction pops the smallest index
        # among the tied-worst.  (A plain (distance, index) sort keeps a
        # *different* tied subset, which would shift k-NN votes on ties.)
        heap: List = []  # max-heap of the k best via negated distances
        for idx in range(len(row)):
            d = float(row[idx])
            if len(heap) < k:
                heapq.heappush(heap, (-d, idx))
            elif -heap[0][0] > d:
                heapq.heapreplace(heap, (-d, idx))
        best = sorted(((-nd, idx) for nd, idx in heap))
        return [
            SearchResult(item=self.items[idx], index=idx, distance=d)
            for d, idx in best
        ]

    def bulk_knn(
        self, queries: Sequence, k: int
    ) -> List[Tuple[List[SearchResult], SearchStats]]:
        """All queries in one engine sweep: the ``q x n`` pair list is
        length-bucketed and batched as a whole, which amortises far better
        than ``q`` separate scans.  Each query still reports its ``n``
        distance computations; the measured wall-clock is split evenly."""
        self._validate_k(k)
        if not queries:
            return []
        n = len(self.items)
        self._counter.take()
        started = time.perf_counter()
        flat = self._counter.many(
            [(query, item) for query in queries for item in self.items]
        )
        matrix = flat.reshape(len(queries), n)
        results = [self._row_results(row, k) for row in matrix]
        # selection is timed too, like every per-query _search elsewhere
        elapsed = time.perf_counter() - started
        self._counter.take()
        per_query = SearchStats(
            distance_computations=n,
            elapsed_seconds=elapsed / len(queries),
        )
        return [(row_results, per_query) for row_results in results]

    def _range_search(self, query, radius: float) -> List[SearchResult]:
        distances = self._counter.many([(query, item) for item in self.items])
        hits = [
            SearchResult(item=self.items[idx], index=int(idx), distance=float(d))
            for idx, d in enumerate(distances)
            if d <= radius
        ]
        hits.sort(key=lambda r: r.distance)
        return hits
