"""Exhaustive (linear-scan) nearest-neighbour search.

The baseline of Table 2's right column: computes the distance from the
query to every indexed item.  Needs no metric properties, so it is the
ground truth every triangle-inequality-based index is validated against.
"""

from __future__ import annotations

import heapq
from typing import List

from .base import NearestNeighborIndex, SearchResult

__all__ = ["ExhaustiveIndex"]


class ExhaustiveIndex(NearestNeighborIndex):
    """Linear scan over all items; ``n`` distance computations per query."""

    def _search(self, query, k: int) -> List[SearchResult]:
        distance = self._counter
        heap = []  # max-heap of the k best via negated distances
        for idx, item in enumerate(self.items):
            d = distance(query, item)
            if len(heap) < k:
                heapq.heappush(heap, (-d, idx))
            elif -heap[0][0] > d:
                heapq.heapreplace(heap, (-d, idx))
        best = sorted(((-nd, idx) for nd, idx in heap))
        return [
            SearchResult(item=self.items[idx], index=idx, distance=d)
            for d, idx in best
        ]
