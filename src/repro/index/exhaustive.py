"""Exhaustive (linear-scan) nearest-neighbour search.

The baseline of Table 2's right column: computes the distance from the
query to every indexed item.  Needs no metric properties, so it is the
ground truth every triangle-inequality-based index is validated against.

The scan is fed through the pair-batched engine
(:meth:`~repro.index.base.CountingDistance.many`), so the ``n`` distance
computations of one query run as a handful of stacked anti-diagonal
sweeps instead of ``n`` interpreted DP loops -- same results, same
reported computation count, a fraction of the wall-clock.
"""

from __future__ import annotations

import time
from typing import Any, List, Sequence, Tuple

import numpy as np

from .base import NearestNeighborIndex, SearchResult, SearchStats, canonical_key

__all__ = ["ExhaustiveIndex"]


class ExhaustiveIndex(NearestNeighborIndex):
    """Linear scan over all items; ``n`` distance computations per query."""

    def _search(self, query: Any, k: int) -> List[SearchResult]:
        distances = self._counter.many([(query, item) for item in self.items])
        return self._row_results(distances, k)

    def _grid_many(self, queries: Sequence[Any]) -> np.ndarray:
        """The counted ``q x n`` scan grid -- an id grid against the
        interned corpus when available (no pair list, no re-encoding),
        the raw pair list otherwise.  Identical values and counts."""
        n = len(self.items)
        store = self._interned_store(queries)
        if store is not None:
            q_ids = np.asarray(
                [store.extra_id(qi) for qi in range(len(queries))],
                dtype=np.int64,
            )
            flat = self._counter.many_ids(
                store,
                np.repeat(q_ids, n),
                np.tile(np.arange(n, dtype=np.int64), len(queries)),
            )
        else:
            flat = self._counter.many(
                [(query, item) for query in queries for item in self.items]
            )
        return flat.reshape(len(queries), n)

    def _row_results(self, row: np.ndarray, k: int) -> List[SearchResult]:
        # Canonical (distance, index) order: a *stable* argsort on the
        # distances keeps equal-distance items in ascending index order,
        # which is exactly the tie-breaking every pruning index applies in
        # its k-best heap -- so exhaustive and pruned searches return the
        # same neighbour sets even on ties.
        order = np.argsort(row, kind="stable")[:k]
        return [
            SearchResult(
                item=self.items[int(idx)],
                index=int(idx),
                distance=float(row[idx]),
            )
            for idx in order
        ]

    def bulk_knn(
        self, queries: Sequence[Any], k: int
    ) -> List[Tuple[List[SearchResult], SearchStats]]:
        """All queries in one engine sweep: the ``q x n`` pair list is
        length-bucketed and batched as a whole, which amortises far better
        than ``q`` separate scans.  Each query still reports its ``n``
        distance computations; the measured wall-clock is split evenly."""
        self._validate_k(k)
        queries = list(queries)
        if not queries:
            return []
        n = len(self.items)
        self._counter.take()
        started = time.perf_counter()
        with self._track_degradation():
            matrix = self._grid_many(queries)
        results = [self._row_results(row, k) for row in matrix]
        # selection is timed too, like every per-query _search elsewhere
        elapsed = time.perf_counter() - started
        self._counter.take()
        per_query = SearchStats(
            distance_computations=n,
            elapsed_seconds=elapsed / len(queries),
        )
        return [(row_results, per_query) for row_results in results]

    def _range_search(self, query: Any, radius: float) -> List[SearchResult]:
        distances = self._counter.many([(query, item) for item in self.items])
        return self._row_hits(distances, radius)

    def _row_hits(self, row: np.ndarray, radius: float) -> List[SearchResult]:
        hits = [
            SearchResult(item=self.items[idx], index=int(idx), distance=float(d))
            for idx, d in enumerate(row)
            if d <= radius
        ]
        hits.sort(key=canonical_key)
        return hits

    def bulk_range_search(
        self, queries: Sequence[Any], radius: float
    ) -> List[Tuple[List[SearchResult], SearchStats]]:
        """All queries' scans in one engine sweep, exactly like
        :meth:`bulk_knn`: same hits and per-query counts as looping
        :meth:`range_search`, one length-bucketed batch instead of ``q``
        scans."""
        if radius < 0:
            raise ValueError(f"radius must be >= 0, got {radius}")
        queries = list(queries)
        if not queries:
            return []
        n = len(self.items)
        self._counter.take()
        started = time.perf_counter()
        with self._track_degradation():
            matrix = self._grid_many(queries)
        results = [self._row_hits(row, radius) for row in matrix]
        elapsed = time.perf_counter() - started
        self._counter.take()
        per_query = SearchStats(
            distance_computations=n,
            elapsed_seconds=elapsed / len(queries),
        )
        return [(row_hits, per_query) for row_hits in results]
