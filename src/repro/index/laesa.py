"""LAESA: Linear AESA [Micó, Oncina & Vidal 1994].

The fast nearest-neighbour algorithm used throughout the paper's
Section 4.3.  Preprocessing stores the distances between every item and a
small set of *base prototypes* (pivots) -- linear memory and linear
preprocessing time, unlike AESA's quadratic matrix.  At query time the
triangle inequality turns each computed distance ``d(q, p)`` into lower
bounds ``g(u) = max_p |d(q, p) - d(p, u)|``; items whose bound exceeds the
best distance found so far can be discarded *without computing their
distance*.

The search loop alternates two roles for the next string to compare
against:

* while unused pivots remain alive, the next comparison is the alive pivot
  with the smallest bound (pivots sharpen *all* bounds);
* afterwards, the candidate with the smallest lower bound (most promising
  neighbour) is compared directly.

With 0 pivots LAESA degenerates into an exhaustive scan, which is exactly
the leftmost point of the paper's Figures 3 and 4.

Query batches go through :meth:`LaesaIndex.bulk_knn`: the entire
``queries x pivots`` distance matrix is computed in one pair-batched
engine sweep (auto-sharded over a process pool when large enough) before
the per-query elimination loops run -- identical results and identical
reported computation counts, a fraction of the wall-clock.

Correctness requires the distance to be a metric; the paper nevertheless
runs LAESA with the non-metric ``d_max`` and ``d_MV`` in Table 2 and
observes (as we do) that the error rate barely moves -- the library allows
it but records ``is_metric`` in the distance registry so users know the
guarantee is gone.
"""

from __future__ import annotations

import heapq
import random
import time
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from .base import (
    NearestNeighborIndex,
    RequestGenerator,
    SearchResult,
    SearchStats,
    canonical_key,
)
from .pivots import select_pivots

if TYPE_CHECKING:
    from ..batch.corpus import PairStore

__all__ = ["LaesaIndex"]


class LaesaIndex(NearestNeighborIndex):
    """LAESA with configurable pivot count and selection strategy.

    Parameters
    ----------
    items, distance:
        The database and the (ideally metric) distance function.
    n_pivots:
        Number of base prototypes.  More pivots mean tighter bounds but a
        higher fixed cost per query (each alive pivot is compared first);
        Figures 3 and 4 sweep this parameter.
    pivot_strategy:
        ``"maxmin"`` (default, as in the original paper), ``"maxsum"`` or
        ``"random"``.
    rng:
        Source of randomness for pivot seeding (deterministic by default).
    """

    def __init__(
        self,
        items: Sequence[Any],
        distance: Callable[[Any, Any], float],
        n_pivots: int,
        pivot_strategy: str = "maxmin",
        rng: Optional[random.Random] = None,
    ) -> None:
        super().__init__(items, distance)
        before = self._counter.calls
        # With an interned corpus the pivot rows dispatch as id grids
        # (ROADMAP 5(b)): same rows, same counts, no per-row re-encoding.
        store = self._corpus.store() if self._corpus is not None else None
        self.pivot_indices, self.pivot_rows = select_pivots(
            self.items, self._counter, n_pivots, pivot_strategy, rng, store
        )
        self.pivot_strategy = pivot_strategy
        self.preprocessing_computations = self._counter.calls - before
        self._pivot_position = {
            item_idx: row for row, item_idx in enumerate(self.pivot_indices)
        }

    @property
    def n_pivots(self) -> int:
        return len(self.pivot_indices)

    def _artifact_params(self) -> Dict[str, Any]:
        return {"n_pivots": self.n_pivots, "pivot_strategy": self.pivot_strategy}

    @classmethod
    def _artifact_key_params(cls, params: Dict[str, Any]) -> Dict[str, Any]:
        params = dict(params)
        # the rng seeds *which* pivots a rebuild would select; any built
        # pivot set answers queries exactly, so it is not part of the key
        params.pop("rng", None)
        if "n_pivots" not in params:
            raise TypeError("LaesaIndex.load requires n_pivots")
        n_pivots = int(params.pop("n_pivots"))
        strategy = str(params.pop("pivot_strategy", "maxmin"))
        if params:
            raise TypeError(
                f"LaesaIndex.load got unexpected parameters {sorted(params)}"
            )
        return {"n_pivots": n_pivots, "pivot_strategy": strategy}

    def _artifact_arrays(self) -> Dict[str, np.ndarray]:
        return {
            "pivot_indices": np.asarray(self.pivot_indices, dtype=np.int64),
            "pivot_rows": np.asarray(self.pivot_rows, dtype=float),
        }

    def _artifact_meta(self) -> Dict[str, Any]:
        return {"pivot_strategy": self.pivot_strategy}

    def _restore_artifact(
        self,
        arrays: Mapping[str, np.ndarray],
        meta: Mapping[str, Any],
        params: Mapping[str, Any],
    ) -> None:
        indices = np.asarray(arrays["pivot_indices"], dtype=np.int64)
        rows = arrays["pivot_rows"]
        if rows.ndim != 2 or rows.shape[0] != len(indices) or (
            len(indices) and rows.shape[1] != len(self.items)
        ):
            raise ValueError(
                f"pivot matrix shape {rows.shape} does not fit "
                f"{len(indices)} pivots over {len(self.items)} items"
            )
        self.pivot_indices = [int(i) for i in indices]
        self.pivot_rows = rows
        self.pivot_strategy = str(meta.get("pivot_strategy", "maxmin"))
        self._pivot_position = {
            item_idx: row for row, item_idx in enumerate(self.pivot_indices)
        }

    @classmethod
    def from_pivots(
        cls,
        items: Sequence[Any],
        distance: Callable[[Any, Any], float],
        pivot_indices: Sequence[int],
        pivot_rows: np.ndarray,
    ) -> "LaesaIndex":
        """Build a LAESA structure from an existing pivot matrix.

        Max-min pivot selection is *nested* (the first ``p`` pivots of a
        larger selection are exactly the selection of size ``p``), so a
        pivot-count sweep (Figures 3/4) can select once at the largest
        count and slice -- this constructor makes that reuse explicit and
        free of recomputation.
        """
        if len(pivot_indices) != len(pivot_rows):
            raise ValueError(
                f"{len(pivot_indices)} pivot indices but "
                f"{len(pivot_rows)} matrix rows"
            )
        rows = np.asarray(pivot_rows, dtype=float)
        if len(pivot_indices) == 0:
            rows = rows.reshape(0, len(items))
        elif rows.ndim != 2 or rows.shape[1] != len(items):
            # a wrong-width matrix would silently broadcast (or crash deep
            # inside _search) -- reject it at construction instead
            raise ValueError(
                f"pivot matrix has shape {rows.shape}; expected "
                f"({len(pivot_indices)}, {len(items)}) for "
                f"{len(items)} indexed items"
            )
        index = cls.__new__(cls)
        NearestNeighborIndex.__init__(index, items, distance)
        index.pivot_indices = list(pivot_indices)
        index.pivot_rows = rows
        index.pivot_strategy = "precomputed"
        index.preprocessing_computations = 0
        index._pivot_position = {
            item_idx: row for row, item_idx in enumerate(index.pivot_indices)
        }
        return index

    def _range_requests(self, radius: float) -> RequestGenerator:
        """Pivot-filtered range search as a request generator.

        Computes the query-to-pivot distances once (``limit=None``,
        cacheable at the pivot's row, like :meth:`_search_requests`);
        every candidate whose lower bound ``max_p |d(q,p) - d(p,u)|``
        exceeds *radius* is discarded without computing its distance,
        and the survivors are requested at limit *radius* -- exact iff
        within the radius, which is the only case that can produce a
        hit.  Scalar and lockstep drivers account one computation per
        request, exactly like the pre-generator loop.
        """
        items = self.items
        n = len(items)
        bounds = np.zeros(n, dtype=float)
        pivot_distances = {}
        hits: List[SearchResult] = []
        for row, item_idx in enumerate(self.pivot_indices):
            d = yield (item_idx, None, row)
            pivot_distances[item_idx] = d
            np.maximum(bounds, np.abs(self.pivot_rows[row] - d), out=bounds)
        for idx in range(n):
            if bounds[idx] > radius:
                continue
            d = pivot_distances.get(idx)
            if d is None:
                d = yield (idx, radius, None)
            if d <= radius:
                hits.append(SearchResult(item=items[idx], index=idx, distance=d))
        hits.sort(key=canonical_key)
        return hits

    def bulk_range_search(
        self, queries: Sequence[Any], radius: float
    ) -> List[Tuple[List[SearchResult], SearchStats]]:
        """Range search for a whole query batch with batched pivot *and*
        candidate phases, exactly like :meth:`bulk_knn`: one engine sweep
        for the ``queries x pivots`` matrix, then lockstep pruning loops
        whose per-round candidate evaluations group into single banded
        engine calls.  Hits and per-query ``distance_computations`` are
        identical to looping :meth:`range_search`.
        """
        if radius < 0:
            raise ValueError(f"radius must be >= 0, got {radius}")
        queries = list(queries)
        if not queries:
            return []
        with self._track_degradation():  # pivot sweep + lockstep drive
            store = self._interned_store(queries)
            cache = None
            sweep_seconds = 0.0
            if self.pivot_indices:
                started = time.perf_counter()
                cache = self._pivot_sweep(queries, store)
                sweep_seconds = time.perf_counter() - started
            return self._lockstep_drive(
                queries,
                [self._range_requests(radius) for _ in queries],
                pivot_cache=cache,
                extra_elapsed=sweep_seconds,
                store=store,
            )

    def _pivot_sweep(
        self, queries: Sequence[Any], store: Optional["PairStore"]
    ) -> np.ndarray:
        """The ``queries x pivots`` distance matrix in one engine sweep
        -- dispatched as an id grid against the interned corpus when
        available (the pivots *are* corpus ids), raw items otherwise.
        Values are identical either way; the bulk drivers charge each
        entry as its elimination loop demands it."""
        n_queries, n_pivots = len(queries), len(self.pivot_indices)
        if store is not None:
            q_ids = np.asarray(
                [store.extra_id(qi) for qi in range(n_queries)], dtype=np.int64
            )
            p_ids = np.asarray(self.pivot_indices, dtype=np.int64)
            flat = self._counter.precompute_ids(
                store, np.repeat(q_ids, n_pivots), np.tile(p_ids, n_queries)
            )
            return flat.reshape(n_queries, n_pivots)
        pivot_items = [self.items[i] for i in self.pivot_indices]
        return self._counter.precompute(queries, pivot_items)

    def _search(
        self,
        query: Any,
        k: int,
        pivot_cache: Optional[np.ndarray] = None,
    ) -> List[SearchResult]:
        return self._drive_search(query, k, pivot_cache)

    def _search_requests(self, k: int) -> RequestGenerator:
        """LAESA's elimination loop as a request generator.

        Pivot comparisons are yielded with ``limit=None`` (their exact
        values tighten every candidate's bound) and ``cache_pos`` set to
        the pivot's row, so bulk drivers can serve them from the
        precomputed ``queries x pivots`` sweep; candidate comparisons
        carry the current k-th-best radius, so drivers may answer them
        with the early-exit twin (scalar) or the batched bounded kernels
        (lockstep).  See
        :meth:`~repro.index.base.NearestNeighborIndex._search_requests`
        for the protocol.
        """
        items = self.items
        n = len(items)
        alive = np.ones(n, dtype=bool)
        bounds = np.zeros(n, dtype=float)
        pending = list(self.pivot_indices)  # alive, not-yet-compared pivots
        # min-heap of (-distance, -index): the root is the canonical worst
        # of the k best found so far under (distance, index) order
        best: List[Tuple[float, int]] = []

        def kth_best() -> float:
            return -best[0][0] if len(best) == k else float("inf")

        def record(idx: int, d: float) -> None:
            entry = (-d, -idx)
            if len(best) < k:
                heapq.heappush(best, entry)
            elif entry > best[0]:
                # canonical (distance, index) order: the newcomer replaces
                # the worst on a smaller distance, or on an equal distance
                # and a smaller index -- every index structure breaks ties
                # the same way, so tied k-NN sets agree across structures
                heapq.heapreplace(best, entry)

        # First comparison: the first pivot if any, else item 0.
        current = pending[0] if pending else 0
        while True:
            alive[current] = False
            row_pos = self._pivot_position.get(current)
            if row_pos is None:
                # Non-pivot candidates only need their distance when it can
                # enter the k-best heap: the early-exit twin abandons the
                # banded DP as soon as the current best radius is exceeded.
                d = yield (current, kth_best(), None)
            else:
                # Pivot distances tighten every bound via |d(q,p) - d(p,u)|
                # and must therefore be exact (limit None); bulk drivers
                # serve them from the precomputed sweep at cache_pos.
                d = yield (current, None, row_pos)
                np.maximum(
                    bounds,
                    np.abs(self.pivot_rows[row_pos] - d),
                    out=bounds,
                )
            record(current, d)
            # Eliminate candidates that provably cannot beat the kth best.
            radius = kth_best()
            if radius < float("inf"):
                alive &= bounds <= radius
            # Choose the next comparison: alive unused pivots first.  Dead
            # pivots are dropped from `pending` for good, so the scan
            # shrinks as elimination progresses (the old list bookkeeping
            # paid O(P) membership tests and removals per iteration, which
            # made query cost quadratic in the pivot count).
            next_pivot = None
            if pending:
                pending = [p for p in pending if alive[p]]
                best_bound = float("inf")
                for p in pending:
                    if bounds[p] < best_bound:
                        best_bound = bounds[p]
                        next_pivot = p
            if next_pivot is not None:
                current = next_pivot
                continue
            candidates = np.nonzero(alive)[0]
            if len(candidates) == 0:
                break
            # argmin over the alive candidates only: with infinite bounds
            # (e.g. d_min against an empty string) a global argmin over an
            # all-inf masked array would return an already-dead index and
            # loop forever; this always selects an alive item, so every
            # iteration retires one candidate.
            current = int(candidates[np.argmin(bounds[candidates])])
        ordered = sorted((-nd, -nidx) for nd, nidx in best)
        return [
            SearchResult(item=items[idx], index=idx, distance=d)
            for d, idx in ordered
        ]

    def bulk_knn(
        self, queries: Sequence[Any], k: int
    ) -> List[Tuple[List[SearchResult], SearchStats]]:
        """k-NN for a whole query batch with batched pivot *and* candidate
        phases.

        One engine sweep computes the full ``queries x pivots`` distance
        matrix up front; the per-query elimination loops then run in
        lockstep
        (:meth:`~repro.index.base.NearestNeighborIndex._bulk_knn_lockstep`),
        reading pivot distances from the cache and grouping each round's
        candidate evaluations -- one bounded comparison per still-active
        query -- into a single batched-kernel call.  Results, neighbour
        order and per-query ``distance_computations`` are identical to
        looping :meth:`knn` (asserted by the tests); only the wall-clock
        drops.  With 0 pivots the lockstep loop degenerates into a
        batched linear scan (no pivot sweep to run).
        """
        self._validate_k(k)
        queries = list(queries)
        if not queries:
            return []
        with self._track_degradation():  # pivot sweep + lockstep drive
            store = self._interned_store(queries)
            cache = None
            sweep_seconds = 0.0
            if self.pivot_indices:
                started = time.perf_counter()
                cache = self._pivot_sweep(queries, store)
                sweep_seconds = time.perf_counter() - started
            return self._bulk_knn_lockstep(
                queries, k, pivot_cache=cache, extra_elapsed=sweep_seconds, store=store
            )
