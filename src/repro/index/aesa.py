"""AESA: Approximating and Eliminating Search Algorithm [Vidal 1986].

The ancestor of LAESA: stores the *full* pairwise distance matrix, so
every already-compared item tightens the lower bound of every candidate.
Search costs an essentially constant number of distance computations, but
preprocessing is quadratic in both time and memory -- the trade-off LAESA
was invented to fix (Rico-Juan & Micó 2003 compare the two on string
distances, which is the ablation ``benchmarks/bench_index_structures.py``
reproduces).
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Sequence

import numpy as np

from .base import NearestNeighborIndex, SearchResult

__all__ = ["AesaIndex"]


class AesaIndex(NearestNeighborIndex):
    """AESA with the full ``n x n`` matrix computed at build time."""

    def __init__(
        self, items: Sequence[Any], distance: Callable[[Any, Any], float]
    ) -> None:
        super().__init__(items, distance)
        n = len(self.items)
        # Upper triangle through the pair-batched engine, then mirrored --
        # the same C(n, 2) computations the scalar loop performed.
        pairs = [
            (self.items[i], self.items[j])
            for i in range(n)
            for j in range(i + 1, n)
        ]
        flat = self._counter.many(pairs)
        matrix = np.zeros((n, n), dtype=float)
        pos = 0
        for i in range(n):
            row = flat[pos : pos + n - i - 1]
            matrix[i, i + 1 :] = row
            matrix[i + 1 :, i] = row
            pos += n - i - 1
        self.matrix = matrix
        self.preprocessing_computations = self._counter.take()

    def _range_search(self, query, radius: float) -> List[SearchResult]:
        """Range search with the full-matrix bounds: repeatedly compare the
        undecided item with the smallest lower bound, tighten everyone's
        bounds with the new distance, and discard items whose bound
        exceeds *radius*."""
        distance = self._counter
        items = self.items
        n = len(items)
        bounds = np.zeros(n, dtype=float)
        undecided = np.ones(n, dtype=bool)
        hits: List[SearchResult] = []
        while True:
            candidates = np.nonzero(undecided)[0]
            if len(candidates) == 0:
                break
            # select among the undecided only: an all-inf bounds vector
            # (infinite distances) would otherwise re-pick a decided index
            current = int(candidates[np.argmin(bounds[candidates])])
            undecided[current] = False
            d = distance(query, items[current])
            if d <= radius:
                hits.append(
                    SearchResult(item=items[current], index=current, distance=d)
                )
            np.maximum(bounds, np.abs(self.matrix[current] - d), out=bounds)
            undecided &= bounds <= radius
        hits.sort(key=lambda r: r.distance)
        return hits

    def _search(self, query, k: int) -> List[SearchResult]:
        distance = self._counter
        items = self.items
        n = len(items)
        alive = np.ones(n, dtype=bool)
        bounds = np.zeros(n, dtype=float)
        best: List = []

        def kth_best() -> float:
            return -best[0][0] if len(best) == k else float("inf")

        current = 0
        while True:
            alive[current] = False
            d = distance(query, items[current])
            if len(best) < k:
                heapq.heappush(best, (-d, current))
            elif -best[0][0] > d:
                heapq.heapreplace(best, (-d, current))
            # every compared item is a pivot in AESA
            np.maximum(bounds, np.abs(self.matrix[current] - d), out=bounds)
            radius = kth_best()
            if radius < float("inf"):
                alive &= bounds <= radius
            candidates = np.nonzero(alive)[0]
            if len(candidates) == 0:
                break
            current = int(candidates[np.argmin(bounds[candidates])])
        ordered = sorted(((-nd, idx) for nd, idx in best))
        return [
            SearchResult(item=items[idx], index=idx, distance=d)
            for d, idx in ordered
        ]
