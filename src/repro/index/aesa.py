"""AESA: Approximating and Eliminating Search Algorithm [Vidal 1986].

The ancestor of LAESA: stores the *full* pairwise distance matrix, so
every already-compared item tightens the lower bound of every candidate.
Search costs an essentially constant number of distance computations, but
preprocessing is quadratic in both time and memory -- the trade-off LAESA
was invented to fix (Rico-Juan & Micó 2003 compare the two on string
distances, which is the ablation ``benchmarks/bench_index_structures.py``
reproduces).
"""

from __future__ import annotations

import heapq
import time
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from ..tools import knobs
from .base import (
    NearestNeighborIndex,
    RequestGenerator,
    SearchResult,
    SearchStats,
    canonical_key,
)

if TYPE_CHECKING:
    from ..batch.corpus import PairStore

__all__ = ["AesaIndex"]


class AesaIndex(NearestNeighborIndex):
    """AESA with the full ``n x n`` matrix computed at build time."""

    #: Largest database for which :meth:`bulk_knn` front-loads the full
    #: ``queries x items`` sweep.  AESA visits a near-constant handful of
    #: items per query, so the sweep's ``n`` engine evaluations per query
    #: only undercut the scalar loop while ``n`` is small -- the regime
    #: AESA's quadratic preprocessing confines it to anyway.  Beyond this
    #: bulk_knn skips the sweep and batches only the lockstep candidate
    #: rounds (identical results and counts either way).  Overridable per
    #: instance via the ``bulk_sweep_max_items`` keyword or, fleet-wide,
    #: the ``REPRO_AESA_BULK_MAX_ITEMS`` environment variable.
    _BULK_SWEEP_MAX_ITEMS = 512

    def __init__(
        self,
        items: Sequence[Any],
        distance: Callable[[Any, Any], float],
        bulk_sweep_max_items: Optional[int] = None,
    ) -> None:
        super().__init__(items, distance)
        self._apply_bulk_gate(bulk_sweep_max_items)
        n = len(self.items)
        # Upper triangle through the pair-batched engine, then mirrored --
        # the same C(n, 2) computations the scalar loop performed.  With
        # an interned corpus the whole triangle is an id grid: no pair
        # list is materialised and the (auto-sharded) fan-out ships only
        # id arrays against the shared-memory corpus.
        if self._corpus is not None:
            iu, ju = np.triu_indices(n, k=1)
            flat = self._counter.many_ids(self._corpus.store(), iu, ju)
        else:
            pairs = [
                (self.items[i], self.items[j])
                for i in range(n)
                for j in range(i + 1, n)
            ]
            flat = self._counter.many(pairs)
        matrix = np.zeros((n, n), dtype=float)
        pos = 0
        for i in range(n):
            row = flat[pos : pos + n - i - 1]
            matrix[i, i + 1 :] = row
            matrix[i + 1 :, i] = row
            pos += n - i - 1
        self.matrix = matrix
        self.preprocessing_computations = self._counter.take()

    def _apply_bulk_gate(self, bulk_sweep_max_items: Optional[int]) -> None:
        if bulk_sweep_max_items is None:
            bulk_sweep_max_items = knobs.get_int("REPRO_AESA_BULK_MAX_ITEMS")
        if bulk_sweep_max_items is not None:
            # instance attribute shadows the class default; when neither
            # keyword nor env var is given, the class attribute stays the
            # single source of truth (and remains monkeypatchable)
            self._BULK_SWEEP_MAX_ITEMS = int(bulk_sweep_max_items)

    @classmethod
    def _artifact_key_params(cls, params: Dict[str, Any]) -> Dict[str, Any]:
        params = dict(params)
        # the bulk-sweep gate is a runtime batching heuristic: it changes
        # neither the matrix nor any result, so it stays out of the key
        # and is re-applied to the loaded instance instead
        params.pop("bulk_sweep_max_items", None)
        if params:
            raise TypeError(
                f"AesaIndex.load got unexpected parameters {sorted(params)}"
            )
        return {}

    def _artifact_arrays(self) -> Dict[str, np.ndarray]:
        return {"matrix": np.asarray(self.matrix, dtype=float)}

    def _restore_artifact(
        self,
        arrays: Mapping[str, np.ndarray],
        meta: Mapping[str, Any],
        params: Mapping[str, Any],
    ) -> None:
        matrix = arrays["matrix"]
        n = len(self.items)
        if matrix.shape != (n, n):
            raise ValueError(
                f"AESA matrix shape {matrix.shape} does not fit {n} items"
            )
        self.matrix = matrix
        gate = params.get("bulk_sweep_max_items")
        self._apply_bulk_gate(None if gate is None else int(gate))

    def _range_requests(self, radius: float) -> RequestGenerator:
        """Range search with the full-matrix bounds as a request
        generator: repeatedly compare the undecided item with the
        smallest lower bound, tighten everyone's bounds with the new
        distance, and discard items whose bound exceeds *radius*.  Every
        comparison doubles as a pivot, so each request needs the exact
        distance (``limit=None``) and is cacheable at ``cache_pos=item``
        when a bulk driver precomputed the ``queries x items`` sweep.
        """
        items = self.items
        n = len(items)
        bounds = np.zeros(n, dtype=float)
        undecided = np.ones(n, dtype=bool)
        hits: List[SearchResult] = []
        while True:
            candidates = np.nonzero(undecided)[0]
            if len(candidates) == 0:
                break
            # select among the undecided only: an all-inf bounds vector
            # (infinite distances) would otherwise re-pick a decided index
            current = int(candidates[np.argmin(bounds[candidates])])
            undecided[current] = False
            d = yield (current, None, current)
            if d <= radius:
                hits.append(
                    SearchResult(item=items[current], index=current, distance=d)
                )
            np.maximum(bounds, np.abs(self.matrix[current] - d), out=bounds)
            undecided &= bounds <= radius
        hits.sort(key=canonical_key)
        return hits

    def bulk_range_search(
        self, queries: Sequence[Any], radius: float
    ) -> List[Tuple[List[SearchResult], SearchStats]]:
        """Batched range search over the same lockstep machinery as
        :meth:`bulk_knn`, with the same ``_BULK_SWEEP_MAX_ITEMS`` gate on
        the front-loaded ``queries x items`` sweep.  Hits and per-query
        counts are identical to looping :meth:`range_search`.
        """
        if radius < 0:
            raise ValueError(f"radius must be >= 0, got {radius}")
        queries = list(queries)
        if not queries:
            return []
        with self._track_degradation():  # grid sweep + lockstep drive
            generators = [self._range_requests(radius) for _ in queries]
            store = self._interned_store(queries)
            if not self._sweep_worthwhile():
                return self._lockstep_drive(queries, generators, store=store)
            started = time.perf_counter()
            cache = self._grid_sweep(queries, store)
            sweep_seconds = time.perf_counter() - started
            return self._lockstep_drive(
                queries,
                generators,
                pivot_cache=cache,
                extra_elapsed=sweep_seconds,
                store=store,
            )

    def _sweep_worthwhile(self) -> bool:
        """Whether front-loading the full ``queries x items`` sweep can
        undercut the lockstep loop: the database must be small
        (``_BULK_SWEEP_MAX_ITEMS``) *and* the distance must run through
        the engine's batch kernels -- a scalar-fallback distance (exact
        ``d_C`` / ``d_MV`` on the numpy backend, arbitrary callables)
        costs the same per sweep entry as per scalar call, so computing
        the whole grid can never beat AESA's near-constant visited set.
        Results and counts are identical either way; only the cache is
        at stake."""
        from ..batch.engine import has_batched_kernel

        if len(self.items) > self._BULK_SWEEP_MAX_ITEMS:
            return False
        return has_batched_kernel(self._counter._distance)

    def _grid_sweep(
        self, queries: Sequence[Any], store: Optional["PairStore"]
    ) -> np.ndarray:
        """The full ``queries x items`` matrix in one engine sweep -- an
        id grid against the interned corpus when available, raw items
        otherwise (identical values; entries are charged only as the
        elimination loops read them)."""
        n_queries, n = len(queries), len(self.items)
        if store is not None:
            q_ids = np.asarray(
                [store.extra_id(qi) for qi in range(n_queries)], dtype=np.int64
            )
            flat = self._counter.precompute_ids(
                store,
                np.repeat(q_ids, n),
                np.tile(np.arange(n, dtype=np.int64), n_queries),
            )
            return flat.reshape(n_queries, n)
        return self._counter.precompute(queries, self.items)

    def _search(
        self,
        query: Any,
        k: int,
        pivot_cache: Optional[np.ndarray] = None,
    ) -> List[SearchResult]:
        return self._drive_search(query, k, pivot_cache)

    def _search_requests(self, k: int) -> RequestGenerator:
        """AESA's elimination loop as a request generator.

        Every comparison in AESA doubles as a pivot (its matrix row
        tightens all bounds), so each request needs the exact distance
        (``limit=None``) and is cacheable at ``cache_pos=item`` when a
        bulk driver precomputed the ``queries x items`` sweep.  See
        :meth:`~repro.index.base.NearestNeighborIndex._search_requests`
        for the protocol.
        """
        items = self.items
        n = len(items)
        alive = np.ones(n, dtype=bool)
        bounds = np.zeros(n, dtype=float)
        # min-heap of (-distance, -index): root = canonical worst of the
        # k best so far under the library-wide (distance, index) order
        best: List[Tuple[float, int]] = []

        def kth_best() -> float:
            return -best[0][0] if len(best) == k else float("inf")

        current = 0
        while True:
            alive[current] = False
            d = yield (current, None, current)
            entry = (-d, -current)
            if len(best) < k:
                heapq.heappush(best, entry)
            elif entry > best[0]:
                heapq.heapreplace(best, entry)
            # every compared item is a pivot in AESA
            np.maximum(bounds, np.abs(self.matrix[current] - d), out=bounds)
            radius = kth_best()
            if radius < float("inf"):
                alive &= bounds <= radius
            candidates = np.nonzero(alive)[0]
            if len(candidates) == 0:
                break
            current = int(candidates[np.argmin(bounds[candidates])])
        ordered = sorted((-nd, -nidx) for nd, nidx in best)
        return [
            SearchResult(item=items[idx], index=idx, distance=d)
            for d, idx in ordered
        ]

    def bulk_knn(
        self, queries: Sequence[Any], k: int
    ) -> List[Tuple[List[SearchResult], SearchStats]]:
        """Batched query phase over the same lockstep machinery as LAESA.

        Every item AESA compares against acts as a pivot, so the batch
        sweep precomputes the full ``queries x items`` matrix and each
        query's lockstep elimination loop reads (and charges) only the
        handful of entries it actually visits -- results and per-query
        counts are identical to looping :meth:`knn`.  The sweep is worth
        it only while the engine's per-distance cost times ``len(items)``
        undercuts the scalar cost of AESA's near-constant visited set, so
        databases above ``_BULK_SWEEP_MAX_ITEMS`` skip it; the lockstep
        loop still batches each round's comparisons -- one per active
        query -- into a single engine call.
        """
        self._validate_k(k)
        queries = list(queries)
        if not queries:
            return []
        with self._track_degradation():  # grid sweep + lockstep drive
            store = self._interned_store(queries)
            if not self._sweep_worthwhile():
                return self._bulk_knn_lockstep(
                    queries, k, pivot_cache=None, store=store
                )
            started = time.perf_counter()
            cache = self._grid_sweep(queries, store)
            sweep_seconds = time.perf_counter() - started
            return self._bulk_knn_lockstep(
                queries, k, pivot_cache=cache, extra_elapsed=sweep_seconds, store=store
            )
