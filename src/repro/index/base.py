"""Shared interfaces for nearest-neighbour indexes.

The paper's Section 4.3 measures *the number of distance computations* and
the wall-clock time a fast search algorithm spends per query -- so the
central object here is :class:`CountingDistance`, a wrapper that counts
every evaluation, and every index reports a :class:`SearchStats` per query.

All indexes share the same contract:

* built from a list of items and a distance function (plus structure
  parameters);
* ``nearest(query)`` returns ``(SearchResult, SearchStats)``;
* ``knn(query, k)`` returns ``(list[SearchResult], SearchStats)`` with the
  results sorted by distance;
* building may itself compute distances; those are reported separately in
  ``preprocessing_computations`` (LAESA is "linear preprocessing", AESA
  quadratic -- that trade-off is part of what the benchmarks show).
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod
from contextlib import contextmanager
from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    Generator,
    Generic,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Type,
    TypeVar,
)

import numpy as np

from ..core.bounded import bounded_for

if TYPE_CHECKING:
    from pathlib import Path

    from ..batch.corpus import InternedCorpus, PairStore
    from ..store.artifacts import StoreLike

__all__ = [
    "SearchResult",
    "SearchStats",
    "CountingDistance",
    "NearestNeighborIndex",
    "Request",
    "RequestGenerator",
    "canonical_key",
]

Item = TypeVar("Item")
Distance = Callable[[Any, Any], float]

#: ``classmethod`` self-type for the persistence entry points, so
#: ``LaesaIndex.load(...)`` types as a ``LaesaIndex``.
IndexSelf = TypeVar("IndexSelf", bound="NearestNeighborIndex[Any]")

#: One comparison request yielded by a request generator:
#: ``(item_index, limit, cache_pos)`` -- see ``_search_requests``.
Request = Tuple[int, Optional[float], Optional[int]]

#: The request-generator protocol: yields :data:`Request`, receives the
#: distance via ``send`` (``None`` primes the generator), returns the
#: sorted result list via ``StopIteration.value``.
RequestGenerator = Generator[Request, Optional[float], Any]

#: Lockstep rounds with at most this many still-active queries answer
#: their requests with scalar early-exit calls instead of a batch-engine
#: call: below this the engine's per-call overhead and full-table sweeps
#: cost more than banded scalar DPs (values are identical either way).
_SCALAR_TAIL_ROUNDS = 2


@dataclass(frozen=True)
class SearchResult:
    """One neighbour: the item, its position in the indexed list, and its
    distance from the query."""

    item: Any
    index: int
    distance: float


def canonical_key(result: "SearchResult") -> Tuple[float, int]:
    """The library-wide result order: ``(distance, index)``.

    Every index breaks distance ties on the smaller item index, so for
    *metric* distances exhaustive and pruned searches return the *same*
    neighbour sets (not merely the same distance profiles) and 1-NN
    labels never flip between structures on ties.  For non-metric
    distances (``d_max``, ``d_MV``) pruning itself may discard a tied
    true neighbour -- canonical ordering removes the tie-breaking noise
    from such comparisons but cannot repair broken triangle bounds.
    """
    return (result.distance, result.index)


@dataclass(frozen=True)
class SearchStats:
    """Per-query accounting: how many distance evaluations the search
    performed and how long it took."""

    distance_computations: int
    elapsed_seconds: float


class CountingDistance:
    """Wrap a distance function, counting every call.

    The counter can be read and reset between queries; indexes use one
    instance per structure so preprocessing and search costs can be
    separated.

    Beyond plain calls, three accelerated entry points share the counter:

    * :meth:`within` consults the distance's early-exit twin (registered
      via :mod:`repro.core.bounded`) so a search holding a best radius can
      abandon hopeless candidates after a banded DP instead of a full one;
    * :meth:`many` evaluates a whole pair list through the pair-batched
      engine (:mod:`repro.batch`);
    * :meth:`precompute` evaluates a query-batch x reference matrix
      through the engine *without* counting; batched query phases
      (LAESA/AESA ``bulk_knn``) then :meth:`charge` individual entries at
      the moment their elimination loop actually demands that distance.

    All of them count exactly like the equivalent sequence of plain calls
    -- the paper's "number of distance computations" metric measures what
    the *algorithm* demands, not how cheaply the library satisfies it.
    """

    def __init__(self, distance: Distance) -> None:
        self._distance = distance
        self._bounded = bounded_for(distance)
        self.calls = 0

    def __call__(self, x: Any, y: Any) -> float:
        self.calls += 1
        return self._distance(x, y)

    def within(self, x: Any, y: Any, limit: float) -> float:
        """``d(x, y)`` exactly when it is ``<= limit``; otherwise some
        value ``> limit`` (the bounded twin may stop early).  Falls back
        to the full distance when no twin is registered."""
        self.calls += 1
        if self._bounded is not None and limit != float("inf"):
            return self._bounded(x, y, limit)
        return self._distance(x, y)

    def many(self, pairs: Sequence[Tuple[Any, Any]]) -> np.ndarray:
        """Distances for every pair via the batch engine (one count per
        pair, exactly as if each had been a plain call)."""
        from ..batch import pairwise_values

        self.calls += len(pairs)
        return pairwise_values(self._distance, pairs)

    def peek_within(self, x: Any, y: Any, limit: float) -> float:
        """:meth:`within` without touching the counter.

        Lockstep bulk drivers use this for tail rounds with only a
        query or two still active, where one banded scalar DP beats the
        batch engine's per-call overhead; they account the computation
        themselves, like :meth:`charge`.
        """
        if self._bounded is not None and limit != float("inf"):
            return self._bounded(x, y, limit)
        return self._distance(x, y)

    def precompute_bounded(
        self, pairs: Sequence[Tuple[Any, Any]], limits: Sequence[float]
    ) -> np.ndarray:
        """Bounded distances for *pairs* through the batch engine,
        **without** touching the counter.

        Entry ``i`` is bit-identical to ``within(pairs[i][0],
        pairs[i][1], limits[i])`` (the engine replays each twin's
        arithmetic from one batched DP sweep).  Lockstep bulk drivers
        use this for each round's grouped candidate evaluations and
        account per query themselves, exactly like :meth:`precompute` /
        :meth:`charge`.
        """
        from ..batch import pairwise_values_bounded

        return pairwise_values_bounded(self._distance, pairs, limits)

    def precompute_bounded_ids(
        self,
        store: "PairStore",
        x_ids: Sequence[int],
        y_ids: Sequence[int],
        limits: Sequence[float],
    ) -> np.ndarray:
        """:meth:`precompute_bounded` over interned store ids: the same
        bit-identical-to-``within`` guarantee, with kernel inputs
        gathered from the index's interned corpus instead of re-encoded
        per round.  Uncounted, like every precompute."""
        from ..batch import pairwise_values_bounded_ids

        return pairwise_values_bounded_ids(
            self._distance, store, x_ids, y_ids, limits
        )

    def precompute_ids(
        self, store: "PairStore", x_ids: Sequence[int], y_ids: Sequence[int]
    ) -> np.ndarray:
        """Full distances over interned store ids, **without** touching
        the counter -- the interned twin of :meth:`precompute` (bulk
        pivot sweeps dispatch id grids instead of item pairs)."""
        from ..batch import pairwise_values_ids

        return pairwise_values_ids(self._distance, store, x_ids, y_ids)

    def many_ids(
        self, store: "PairStore", x_ids: Sequence[int], y_ids: Sequence[int]
    ) -> np.ndarray:
        """Distances over interned store ids via the batch engine, one
        count per pair -- the interned twin of :meth:`many`."""
        from ..batch import pairwise_values_ids

        self.calls += len(x_ids)
        return pairwise_values_ids(self._distance, store, x_ids, y_ids)

    def precompute(
        self, queries: Sequence[Any], references: Sequence[Any]
    ) -> np.ndarray:
        """The ``queries x references`` distance matrix through the batch
        engine, **without** touching the counter.

        The matrix is a cache, not demanded work: a batched query phase
        computes it in one auto-sharded engine sweep, then its per-query
        elimination loop reads entries out of it and accounts for each
        one via :meth:`charge` only when the scalar algorithm would have
        computed that distance -- so reported counts stay identical to
        the scalar search while the wall-clock drops.  Values are
        bit-identical to plain calls: the engine guarantees this for
        registered distances and invokes unregistered callables on the
        raw item representations, exactly like the scalar search path.
        """
        from ..batch import pairwise_matrix

        return pairwise_matrix(self._distance, queries, references)

    def charge(self, n: int = 1) -> None:
        """Count *n* computations satisfied from a :meth:`precompute`
        cache, exactly as if they had been plain calls."""
        self.calls += n

    def take(self) -> int:
        """Return the current count and reset it to zero."""
        calls = self.calls
        self.calls = 0
        return calls


class NearestNeighborIndex(ABC, Generic[Item]):
    """Base class: counted distance, timing, and the k-NN-from-1-NN glue.

    Construction also *interns* the item list
    (:func:`~repro.batch.corpus.intern_corpus`): the database's symbol
    sequences are normalised and encoded into padded code matrices
    exactly once, so every bulk query against this index dispatches
    ``(id, id)`` pairs against those matrices instead of re-encoding the
    same strings round after round.  Items the corpus cannot represent
    (arbitrary objects, unhashable symbols) simply leave ``_corpus`` as
    ``None`` and every bulk path falls back to raw-pair dispatch --
    identical results either way (``REPRO_INTERN=0`` forces the
    fallback everywhere, the baseline of the identity tests).
    """

    def __init__(self, items: Sequence[Item], distance: Distance) -> None:
        self._init_index(items, distance, None)

    def _init_index(
        self,
        items: Sequence[Item],
        distance: Distance,
        corpus: Optional["InternedCorpus"],
    ) -> None:
        """The shared constructor body.

        ``__init__`` calls it with ``corpus=None`` (interning from
        scratch); the artifact loader's :meth:`_artifact_skeleton` calls
        it with a corpus reconstructed around persisted matrices, so a
        warm start never re-encodes the database.
        """
        if not items:
            raise ValueError("cannot index an empty collection")
        self.items: List[Item] = list(items)
        self._counter = CountingDistance(distance)
        self.preprocessing_computations = 0
        from ..batch import intern_corpus, interning_enabled

        self._corpus = corpus if corpus is not None else (
            intern_corpus(self.items) if interning_enabled() else None
        )
        #: Degradation events of the *last* bulk call on this index
        #: (``{event: count}``, empty when the call ran on the healthy
        #: path) -- the per-call view of the process-wide
        #: :data:`repro.batch.DEGRADATION` counters, so serving layers
        #: can report that a batch of answers, while bit-identical to
        #: the healthy path's, rode the engine's degradation ladder.
        self.last_degradation: Dict[str, int] = {}

    @contextmanager
    def _track_degradation(self) -> Generator[None, None, None]:
        """Record the engine degradation events that occur inside the
        ``with`` body into :attr:`last_degradation` (delta of the
        process-wide counters, non-zero entries only).  Nests safely:
        the outermost capture wins, and its delta includes the inner's."""
        from ..batch import DEGRADATION

        before = DEGRADATION.snapshot()
        try:
            yield
        finally:
            after = DEGRADATION.snapshot()
            self.last_degradation = {
                event: after[event] - before.get(event, 0)
                for event in after
                if after[event] - before.get(event, 0)
            }

    def _interned_store(self, queries: Sequence[Item]) -> Optional["PairStore"]:
        """A :class:`~repro.batch.corpus.PairStore` over the interned
        corpus plus *queries* (encoded once per bulk call against the
        corpus' shared alphabet), or ``None`` when the corpus or the
        queries cannot be interned -- callers then use raw pairs."""
        if self._corpus is None:
            return None
        try:
            return self._corpus.store(queries)
        except TypeError:
            return None

    # -- persistence (repro.store) -----------------------------------------

    def save(self, store: "StoreLike") -> "Path":
        """Snapshot this built index into the artifact *store* (an
        :class:`~repro.store.ArtifactStore` or a root path): corpus
        matrices, structure arrays and a checksummed manifest, written
        crash-safely as a new immutable version.  Returns the snapshot
        directory."""
        from ..store import ArtifactStore

        return ArtifactStore.coerce(store).save(self)

    @classmethod
    def load(
        cls: Type[IndexSelf],
        items: Sequence[Any],
        distance: Distance,
        store: "StoreLike",
        *,
        save_on_miss: bool = False,
        **params: Any,
    ) -> IndexSelf:
        """Load this structure over *items* from *store*, or rebuild.

        *params* are the structure keywords the constructor would take
        (``n_pivots=...`` for LAESA and so on) -- they select the
        artifact key together with the corpus fingerprint and the
        distance identity.  A miss rebuilds silently; a corrupt or
        mismatched artifact rebuilds too, surfaced through
        :class:`~repro.batch.runtime.DegradedExecutionWarning`, the
        ``store_load_failures`` degradation counter and the returned
        index's :attr:`last_degradation`.  Either way the result
        answers every query exactly like a cold build.

        ``save_on_miss=True`` publishes a miss-triggered build back to
        *store* (best effort) so the next process warm-starts -- the
        serving tier's restart path uses this.
        """
        from ..store import load_or_build

        return load_or_build(
            cls, items, distance, store, params, save_on_miss=save_on_miss
        )

    @classmethod
    def _artifact_skeleton(
        cls: Type[IndexSelf],
        items: Sequence[Any],
        distance: Distance,
        corpus: Optional["InternedCorpus"],
    ) -> IndexSelf:
        """A bare instance around *items* that skips the subclass
        constructor (zero distance evaluations); the artifact loader
        attaches the persisted structure via :meth:`_restore_artifact`."""
        index = cls.__new__(cls)
        index._init_index(items, distance, corpus)
        return index

    def _artifact_params(self) -> Dict[str, Any]:
        """Key-relevant structure parameters of this *built* instance
        (the save-side mirror of :meth:`_artifact_key_params`)."""
        return {}

    @classmethod
    def _artifact_key_params(cls, params: Dict[str, Any]) -> Dict[str, Any]:
        """Normalise ``load(**params)`` keywords into the key-relevant
        parameter dict: defaults applied, runtime-only knobs dropped.
        Unknown names raise ``TypeError`` -- a typo'd keyword must not
        silently key-miss forever."""
        if params:
            raise TypeError(
                f"{cls.__name__}.load got unexpected parameters "
                f"{sorted(params)}"
            )
        return {}

    def _artifact_arrays(self) -> Dict[str, np.ndarray]:
        """Structure payload arrays to persist (saved as one ``.npy``
        each, reloaded as read-only maps)."""
        return {}

    def _artifact_meta(self) -> Dict[str, Any]:
        """JSON-serialisable structure scalars for the manifest."""
        return {}

    def _restore_artifact(
        self,
        arrays: Mapping[str, np.ndarray],
        meta: Mapping[str, Any],
        params: Mapping[str, Any],
    ) -> None:
        """Reattach persisted structure onto a skeleton instance -- the
        inverse of :meth:`_artifact_arrays` / :meth:`_artifact_meta`.
        *params* are the raw ``load`` keywords, for runtime-only options
        that apply to loaded instances as well.  Structures without
        build-time state (exhaustive scan) need nothing."""

    @abstractmethod
    def _search(self, query: Item, k: int) -> List[SearchResult]:
        """Return the k nearest neighbours, sorted by distance."""

    def _range_search(self, query: Item, radius: float) -> List[SearchResult]:
        """Return every item within *radius*; default scans linearly.

        Subclasses with pruning structures implement
        :meth:`_range_requests` instead, which this method then drives
        scalar-style (and :meth:`bulk_range_search` drives in lockstep).
        """
        try:
            gen = self._range_requests(radius)
        except NotImplementedError:
            distance = self._counter
            hits = []
            for idx, item in enumerate(self.items):
                d = distance(query, item)
                if d <= radius:
                    hits.append(SearchResult(item=item, index=idx, distance=d))
            hits.sort(key=canonical_key)
            return hits
        return self._drive_requests(query, gen)

    def range_search(
        self, query: Item, radius: float
    ) -> Tuple[List[SearchResult], SearchStats]:
        """All items with ``d(query, item) <= radius``, closest first."""
        if radius < 0:
            raise ValueError(f"radius must be >= 0, got {radius}")
        self._counter.take()
        started = time.perf_counter()
        results = self._range_search(query, radius)
        elapsed = time.perf_counter() - started
        stats = SearchStats(
            distance_computations=self._counter.take(),
            elapsed_seconds=elapsed,
        )
        return results, stats

    def nearest(self, query: Item) -> Tuple[SearchResult, SearchStats]:
        """Return the nearest neighbour of *query* with per-query stats."""
        results, stats = self.knn(query, 1)
        return results[0], stats

    def _validate_k(self, k: int) -> None:
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        if k > len(self.items):
            raise ValueError(
                f"k={k} exceeds the {len(self.items)} indexed items"
            )

    def knn(self, query: Item, k: int) -> Tuple[List[SearchResult], SearchStats]:
        """Return the *k* nearest neighbours of *query*, closest first."""
        self._validate_k(k)
        self._counter.take()
        started = time.perf_counter()
        results = self._search(query, k)
        elapsed = time.perf_counter() - started
        stats = SearchStats(
            distance_computations=self._counter.take(),
            elapsed_seconds=elapsed,
        )
        return results, stats

    def bulk_knn(
        self, queries: Sequence[Item], k: int
    ) -> List[Tuple[List[SearchResult], SearchStats]]:
        """k-NN for a whole query batch, one ``(results, stats)`` each.

        The default simply loops :meth:`knn`; structures with a batchable
        phase override it -- exhaustive scans push the whole query grid
        through the pair-batched engine
        (:class:`~repro.index.exhaustive.ExhaustiveIndex`), LAESA and
        AESA fan the batch against their pivots in one sweep and feed the
        per-query elimination loops from the resulting cache
        (:class:`~repro.index.laesa.LaesaIndex`,
        :class:`~repro.index.aesa.AesaIndex`).  Every override returns
        results and per-query ``distance_computations`` identical to this
        loop.
        """
        with self._track_degradation():
            return [self.knn(query, k) for query in queries]

    def _search_requests(self, k: int) -> RequestGenerator:
        """The request-generator protocol behind the lockstep drivers.

        Subclasses with a batchable query phase (LAESA, AESA) implement
        their elimination loop as a generator that *yields* one
        comparison request at a time and receives the distance via
        ``send``::

            d = yield (item_index, limit, cache_pos)

        ``limit`` is ``None`` when the algorithm needs the exact
        distance (pivot comparisons that feed triangle-inequality
        bounds) and the current early-exit radius otherwise;
        ``cache_pos`` is the column of the bulk pivot cache that holds
        this distance (``None`` when the request is not precomputable).
        The generator never touches the counter -- each driver accounts
        one computation per request, which is exactly what the scalar
        loop would have counted.  The sorted result list is returned via
        ``StopIteration.value``.
        """
        raise NotImplementedError(
            f"{type(self).__name__} has no request-generator search"
        )

    def _range_requests(self, radius: float) -> RequestGenerator:
        """Range-search twin of :meth:`_search_requests`.

        Same request protocol (yield ``(item_index, limit, cache_pos)``,
        receive the distance, return the sorted hit list via
        ``StopIteration.value``), with the fixed *radius* in place of
        the shrinking k-th-best limit.  Structures that implement it get
        a scalar :meth:`_range_search` and a lockstep
        :meth:`bulk_range_search` for free.
        """
        raise NotImplementedError(
            f"{type(self).__name__} has no request-generator range search"
        )

    def _drive_requests(
        self,
        query: Item,
        gen: RequestGenerator,
        pivot_cache: Optional[np.ndarray] = None,
    ) -> Any:
        """Run one request generator scalar-style (k-NN or range).

        Exact requests are answered with a plain counted call (or a
        charged *pivot_cache* read when a bulk driver precomputed them);
        bounded requests go through :meth:`CountingDistance.within`.
        This is behaviour-identical to the pre-generator scalar loops:
        one counted evaluation per request, early exit on candidates.
        """
        distance = self._counter
        items = self.items
        value: Optional[float] = None
        while True:
            try:
                idx, limit, cache_pos = gen.send(value)
            except StopIteration as stop:
                return stop.value
            if limit is None:
                if pivot_cache is not None and cache_pos is not None:
                    distance.charge()
                    value = float(pivot_cache[cache_pos])
                else:
                    value = distance(query, items[idx])
            else:
                value = distance.within(query, items[idx], limit)

    def _drive_search(
        self,
        query: Item,
        k: int,
        pivot_cache: Optional[np.ndarray] = None,
    ) -> List[SearchResult]:
        """Scalar driver for :meth:`_search_requests` (see
        :meth:`_drive_requests`)."""
        return self._drive_requests(query, self._search_requests(k), pivot_cache)

    def _bulk_knn_lockstep(
        self,
        queries: Sequence[Item],
        k: int,
        pivot_cache: Optional[np.ndarray] = None,
        extra_elapsed: float = 0.0,
        store: Optional["PairStore"] = None,
    ) -> List[Tuple[List[SearchResult], SearchStats]]:
        """Lockstep driver over :meth:`_search_requests` (see
        :meth:`_lockstep_drive`)."""
        return self._lockstep_drive(
            queries,
            [self._search_requests(k) for _ in queries],
            pivot_cache=pivot_cache,
            extra_elapsed=extra_elapsed,
            store=store,
        )

    def bulk_range_search(
        self, queries: Sequence[Item], radius: float
    ) -> List[Tuple[List[SearchResult], SearchStats]]:
        """Range search for a whole query batch, one ``(hits, stats)``
        tuple per query, closest first.

        Structures that implement :meth:`_range_requests` run every
        query's pruning loop in lockstep
        (:meth:`_lockstep_drive`), grouping each round's candidate
        evaluations -- one bounded comparison per still-active query --
        into a single banded :func:`~repro.batch.pairwise_values_bounded`
        engine call; hits, order and per-query
        ``distance_computations`` are identical to looping
        :meth:`range_search` (asserted by the tests).  Structures
        without the generator fall back to exactly that loop.  LAESA
        and AESA override this to also precompute their pivot sweeps.
        """
        if radius < 0:
            raise ValueError(f"radius must be >= 0, got {radius}")
        queries = list(queries)
        if not queries:
            return []
        try:
            generators = [self._range_requests(radius) for _ in queries]
        except NotImplementedError:
            with self._track_degradation():
                return [self.range_search(query, radius) for query in queries]
        return self._lockstep_drive(queries, generators)

    def _lockstep_drive(
        self,
        queries: Sequence[Item],
        generators: List[RequestGenerator],
        pivot_cache: Optional[np.ndarray] = None,
        extra_elapsed: float = 0.0,
        store: Optional["PairStore"] = None,
    ) -> List[Tuple[Any, SearchStats]]:
        """Run every query's request generator in lockstep rounds,
        batching each round's candidate evaluations into one engine call.

        All query generators advance together: cached pivot requests are
        served inline from *pivot_cache* (row ``qi``), and the remaining
        requests of the round -- one per still-active query -- are grouped
        into a single :meth:`CountingDistance.precompute_bounded` call, so
        the scalar tail of the candidate phase runs through the banded
        batch DP kernels instead of one bounded Python call per candidate.
        With an interned *store* (built here when the corpus allows it),
        each round dispatches ``(query id, item id)`` pairs against the
        corpus matrices (:meth:`CountingDistance.precompute_bounded_ids`)
        -- same values, none of the per-round re-encoding.

        Each query's request stream depends only on its own distances, so
        lockstep scheduling returns bit-identical results, distances
        and per-query ``distance_computations`` to the scalar drivers
        (one count per request; asserted by the tests).  Wall-clock (plus
        *extra_elapsed*, e.g. a pivot sweep) is split evenly across the
        per-query stats.  Engine degradation during the drive lands in
        :attr:`last_degradation`.
        """
        with self._track_degradation():
            return self._lockstep_rounds(
                queries, generators, pivot_cache, extra_elapsed, store
            )

    def _lockstep_rounds(
        self,
        queries: Sequence[Item],
        generators: List[RequestGenerator],
        pivot_cache: Optional[np.ndarray],
        extra_elapsed: float,
        store: Optional["PairStore"],
    ) -> List[Tuple[Any, SearchStats]]:
        started = time.perf_counter()
        if store is None:
            store = self._interned_store(queries)
        items = self.items
        n_queries = len(queries)
        counts = [0] * n_queries
        results: List[Optional[Any]] = [None] * n_queries
        requests: List[Optional[Request]] = [None] * n_queries
        active: List[int] = []
        for qi, gen in enumerate(generators):
            try:
                requests[qi] = gen.send(None)
                active.append(qi)
            except StopIteration as stop:  # pragma: no cover - k >= 1 implies
                results[qi] = stop.value  # at least one comparison
        while active:
            parked: List[int] = []
            for qi in active:
                # serve precomputed requests inline until this query
                # either finishes or demands a real evaluation
                while True:
                    idx, limit, cache_pos = requests[qi]
                    if (
                        limit is not None
                        or pivot_cache is None
                        or cache_pos is None
                    ):
                        parked.append(qi)
                        break
                    counts[qi] += 1
                    try:
                        requests[qi] = generators[qi].send(
                            float(pivot_cache[qi][cache_pos])
                        )
                    except StopIteration as stop:
                        results[qi] = stop.value
                        break
            if not parked:
                active = [qi for qi in active if results[qi] is None]
                continue
            limits = [
                float("inf") if requests[qi][1] is None else requests[qi][1]
                for qi in parked
            ]
            if len(parked) <= _SCALAR_TAIL_ROUNDS:
                # tail rounds: with only a query or two still active the
                # engine's per-call overhead (and its full-table DP) loses
                # to one banded scalar evaluation; peek_within returns the
                # same values by the precompute_bounded contract
                values = [
                    self._counter.peek_within(
                        queries[qi], items[requests[qi][0]], limit
                    )
                    for qi, limit in zip(parked, limits)
                ]
            elif store is not None:
                values = self._counter.precompute_bounded_ids(
                    store,
                    [store.extra_id(qi) for qi in parked],
                    [requests[qi][0] for qi in parked],
                    limits,
                )
            else:
                pairs = [
                    (queries[qi], items[requests[qi][0]]) for qi in parked
                ]
                values = self._counter.precompute_bounded(pairs, limits)
            still_active: List[int] = []
            for qi, value in zip(parked, values):
                counts[qi] += 1
                try:
                    requests[qi] = generators[qi].send(float(value))
                    still_active.append(qi)
                except StopIteration as stop:
                    results[qi] = stop.value
            active = still_active
        share = (time.perf_counter() - started + extra_elapsed) / max(
            n_queries, 1
        )
        return [
            (
                results[qi],
                SearchStats(
                    distance_computations=counts[qi], elapsed_seconds=share
                ),
            )
            for qi in range(n_queries)
        ]
