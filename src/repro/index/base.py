"""Shared interfaces for nearest-neighbour indexes.

The paper's Section 4.3 measures *the number of distance computations* and
the wall-clock time a fast search algorithm spends per query -- so the
central object here is :class:`CountingDistance`, a wrapper that counts
every evaluation, and every index reports a :class:`SearchStats` per query.

All indexes share the same contract:

* built from a list of items and a distance function (plus structure
  parameters);
* ``nearest(query)`` returns ``(SearchResult, SearchStats)``;
* ``knn(query, k)`` returns ``(list[SearchResult], SearchStats)`` with the
  results sorted by distance;
* building may itself compute distances; those are reported separately in
  ``preprocessing_computations`` (LAESA is "linear preprocessing", AESA
  quadratic -- that trade-off is part of what the benchmarks show).
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any, Callable, Generic, List, Sequence, Tuple, TypeVar

__all__ = [
    "SearchResult",
    "SearchStats",
    "CountingDistance",
    "NearestNeighborIndex",
]

Item = TypeVar("Item")
Distance = Callable[[Any, Any], float]


@dataclass(frozen=True)
class SearchResult:
    """One neighbour: the item, its position in the indexed list, and its
    distance from the query."""

    item: Any
    index: int
    distance: float


@dataclass(frozen=True)
class SearchStats:
    """Per-query accounting: how many distance evaluations the search
    performed and how long it took."""

    distance_computations: int
    elapsed_seconds: float


class CountingDistance:
    """Wrap a distance function, counting every call.

    The counter can be read and reset between queries; indexes use one
    instance per structure so preprocessing and search costs can be
    separated.
    """

    def __init__(self, distance: Distance) -> None:
        self._distance = distance
        self.calls = 0

    def __call__(self, x: Any, y: Any) -> float:
        self.calls += 1
        return self._distance(x, y)

    def take(self) -> int:
        """Return the current count and reset it to zero."""
        calls = self.calls
        self.calls = 0
        return calls


class NearestNeighborIndex(ABC, Generic[Item]):
    """Base class: counted distance, timing, and the k-NN-from-1-NN glue."""

    def __init__(self, items: Sequence[Item], distance: Distance) -> None:
        if not items:
            raise ValueError("cannot index an empty collection")
        self.items: List[Item] = list(items)
        self._counter = CountingDistance(distance)
        self.preprocessing_computations = 0

    @abstractmethod
    def _search(self, query: Item, k: int) -> List[SearchResult]:
        """Return the k nearest neighbours, sorted by distance."""

    def _range_search(self, query: Item, radius: float) -> List[SearchResult]:
        """Return every item within *radius*; default scans linearly.

        Subclasses with pruning structures override this with a
        triangle-inequality-aware version.
        """
        distance = self._counter
        hits = []
        for idx, item in enumerate(self.items):
            d = distance(query, item)
            if d <= radius:
                hits.append(SearchResult(item=item, index=idx, distance=d))
        hits.sort(key=lambda r: r.distance)
        return hits

    def range_search(
        self, query: Item, radius: float
    ) -> Tuple[List[SearchResult], SearchStats]:
        """All items with ``d(query, item) <= radius``, closest first."""
        if radius < 0:
            raise ValueError(f"radius must be >= 0, got {radius}")
        self._counter.take()
        started = time.perf_counter()
        results = self._range_search(query, radius)
        elapsed = time.perf_counter() - started
        stats = SearchStats(
            distance_computations=self._counter.take(),
            elapsed_seconds=elapsed,
        )
        return results, stats

    def nearest(self, query: Item) -> Tuple[SearchResult, SearchStats]:
        """Return the nearest neighbour of *query* with per-query stats."""
        results, stats = self.knn(query, 1)
        return results[0], stats

    def knn(self, query: Item, k: int) -> Tuple[List[SearchResult], SearchStats]:
        """Return the *k* nearest neighbours of *query*, closest first."""
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        if k > len(self.items):
            raise ValueError(
                f"k={k} exceeds the {len(self.items)} indexed items"
            )
        self._counter.take()
        started = time.perf_counter()
        results = self._search(query, k)
        elapsed = time.perf_counter() - started
        stats = SearchStats(
            distance_computations=self._counter.take(),
            elapsed_seconds=elapsed,
        )
        return results, stats
