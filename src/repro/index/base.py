"""Shared interfaces for nearest-neighbour indexes.

The paper's Section 4.3 measures *the number of distance computations* and
the wall-clock time a fast search algorithm spends per query -- so the
central object here is :class:`CountingDistance`, a wrapper that counts
every evaluation, and every index reports a :class:`SearchStats` per query.

All indexes share the same contract:

* built from a list of items and a distance function (plus structure
  parameters);
* ``nearest(query)`` returns ``(SearchResult, SearchStats)``;
* ``knn(query, k)`` returns ``(list[SearchResult], SearchStats)`` with the
  results sorted by distance;
* building may itself compute distances; those are reported separately in
  ``preprocessing_computations`` (LAESA is "linear preprocessing", AESA
  quadratic -- that trade-off is part of what the benchmarks show).
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any, Callable, Generic, List, Sequence, Tuple, TypeVar

import numpy as np

from ..core.bounded import bounded_for

__all__ = [
    "SearchResult",
    "SearchStats",
    "CountingDistance",
    "NearestNeighborIndex",
    "canonical_key",
]

Item = TypeVar("Item")
Distance = Callable[[Any, Any], float]


@dataclass(frozen=True)
class SearchResult:
    """One neighbour: the item, its position in the indexed list, and its
    distance from the query."""

    item: Any
    index: int
    distance: float


def canonical_key(result: "SearchResult") -> Tuple[float, int]:
    """The library-wide result order: ``(distance, index)``.

    Every index breaks distance ties on the smaller item index, so for
    *metric* distances exhaustive and pruned searches return the *same*
    neighbour sets (not merely the same distance profiles) and 1-NN
    labels never flip between structures on ties.  For non-metric
    distances (``d_max``, ``d_MV``) pruning itself may discard a tied
    true neighbour -- canonical ordering removes the tie-breaking noise
    from such comparisons but cannot repair broken triangle bounds.
    """
    return (result.distance, result.index)


@dataclass(frozen=True)
class SearchStats:
    """Per-query accounting: how many distance evaluations the search
    performed and how long it took."""

    distance_computations: int
    elapsed_seconds: float


class CountingDistance:
    """Wrap a distance function, counting every call.

    The counter can be read and reset between queries; indexes use one
    instance per structure so preprocessing and search costs can be
    separated.

    Beyond plain calls, three accelerated entry points share the counter:

    * :meth:`within` consults the distance's early-exit twin (registered
      via :mod:`repro.core.bounded`) so a search holding a best radius can
      abandon hopeless candidates after a banded DP instead of a full one;
    * :meth:`many` evaluates a whole pair list through the pair-batched
      engine (:mod:`repro.batch`);
    * :meth:`precompute` evaluates a query-batch x reference matrix
      through the engine *without* counting; batched query phases
      (LAESA/AESA ``bulk_knn``) then :meth:`charge` individual entries at
      the moment their elimination loop actually demands that distance.

    All of them count exactly like the equivalent sequence of plain calls
    -- the paper's "number of distance computations" metric measures what
    the *algorithm* demands, not how cheaply the library satisfies it.
    """

    def __init__(self, distance: Distance) -> None:
        self._distance = distance
        self._bounded = bounded_for(distance)
        self.calls = 0

    def __call__(self, x: Any, y: Any) -> float:
        self.calls += 1
        return self._distance(x, y)

    def within(self, x: Any, y: Any, limit: float) -> float:
        """``d(x, y)`` exactly when it is ``<= limit``; otherwise some
        value ``> limit`` (the bounded twin may stop early).  Falls back
        to the full distance when no twin is registered."""
        self.calls += 1
        if self._bounded is not None and limit != float("inf"):
            return self._bounded(x, y, limit)
        return self._distance(x, y)

    def many(self, pairs: Sequence[Tuple[Any, Any]]) -> np.ndarray:
        """Distances for every pair via the batch engine (one count per
        pair, exactly as if each had been a plain call)."""
        from ..batch import pairwise_values

        self.calls += len(pairs)
        return pairwise_values(self._distance, pairs)

    def precompute(
        self, queries: Sequence[Any], references: Sequence[Any]
    ) -> np.ndarray:
        """The ``queries x references`` distance matrix through the batch
        engine, **without** touching the counter.

        The matrix is a cache, not demanded work: a batched query phase
        computes it in one auto-sharded engine sweep, then its per-query
        elimination loop reads entries out of it and accounts for each
        one via :meth:`charge` only when the scalar algorithm would have
        computed that distance -- so reported counts stay identical to
        the scalar search while the wall-clock drops.  Values are
        bit-identical to plain calls: the engine guarantees this for
        registered distances and invokes unregistered callables on the
        raw item representations, exactly like the scalar search path.
        """
        from ..batch import pairwise_matrix

        return pairwise_matrix(self._distance, queries, references)

    def charge(self, n: int = 1) -> None:
        """Count *n* computations satisfied from a :meth:`precompute`
        cache, exactly as if they had been plain calls."""
        self.calls += n

    def take(self) -> int:
        """Return the current count and reset it to zero."""
        calls = self.calls
        self.calls = 0
        return calls


class NearestNeighborIndex(ABC, Generic[Item]):
    """Base class: counted distance, timing, and the k-NN-from-1-NN glue."""

    def __init__(self, items: Sequence[Item], distance: Distance) -> None:
        if not items:
            raise ValueError("cannot index an empty collection")
        self.items: List[Item] = list(items)
        self._counter = CountingDistance(distance)
        self.preprocessing_computations = 0

    @abstractmethod
    def _search(self, query: Item, k: int) -> List[SearchResult]:
        """Return the k nearest neighbours, sorted by distance."""

    def _range_search(self, query: Item, radius: float) -> List[SearchResult]:
        """Return every item within *radius*; default scans linearly.

        Subclasses with pruning structures override this with a
        triangle-inequality-aware version.
        """
        distance = self._counter
        hits = []
        for idx, item in enumerate(self.items):
            d = distance(query, item)
            if d <= radius:
                hits.append(SearchResult(item=item, index=idx, distance=d))
        hits.sort(key=canonical_key)
        return hits

    def range_search(
        self, query: Item, radius: float
    ) -> Tuple[List[SearchResult], SearchStats]:
        """All items with ``d(query, item) <= radius``, closest first."""
        if radius < 0:
            raise ValueError(f"radius must be >= 0, got {radius}")
        self._counter.take()
        started = time.perf_counter()
        results = self._range_search(query, radius)
        elapsed = time.perf_counter() - started
        stats = SearchStats(
            distance_computations=self._counter.take(),
            elapsed_seconds=elapsed,
        )
        return results, stats

    def nearest(self, query: Item) -> Tuple[SearchResult, SearchStats]:
        """Return the nearest neighbour of *query* with per-query stats."""
        results, stats = self.knn(query, 1)
        return results[0], stats

    def _validate_k(self, k: int) -> None:
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        if k > len(self.items):
            raise ValueError(
                f"k={k} exceeds the {len(self.items)} indexed items"
            )

    def knn(self, query: Item, k: int) -> Tuple[List[SearchResult], SearchStats]:
        """Return the *k* nearest neighbours of *query*, closest first."""
        self._validate_k(k)
        self._counter.take()
        started = time.perf_counter()
        results = self._search(query, k)
        elapsed = time.perf_counter() - started
        stats = SearchStats(
            distance_computations=self._counter.take(),
            elapsed_seconds=elapsed,
        )
        return results, stats

    def bulk_knn(
        self, queries: Sequence[Item], k: int
    ) -> List[Tuple[List[SearchResult], SearchStats]]:
        """k-NN for a whole query batch, one ``(results, stats)`` each.

        The default simply loops :meth:`knn`; structures with a batchable
        phase override it -- exhaustive scans push the whole query grid
        through the pair-batched engine
        (:class:`~repro.index.exhaustive.ExhaustiveIndex`), LAESA and
        AESA fan the batch against their pivots in one sweep and feed the
        per-query elimination loops from the resulting cache
        (:class:`~repro.index.laesa.LaesaIndex`,
        :class:`~repro.index.aesa.AesaIndex`).  Every override returns
        results and per-query ``distance_computations`` identical to this
        loop.
        """
        return [self.knn(query, k) for query in queries]

    def _bulk_knn_with_pivot_cache(
        self, queries: Sequence[Item], k: int, pivot_items: Sequence[Item]
    ) -> List[Tuple[List[SearchResult], SearchStats]]:
        """The shared batched query phase behind LAESA's and AESA's
        ``bulk_knn``.

        One :meth:`CountingDistance.precompute` sweep evaluates the full
        ``queries x pivot_items`` matrix (auto-sharded over a process
        pool when large enough); each query then runs the subclass's
        ``_search(query, k, pivot_cache=row)`` -- which must accept the
        ``pivot_cache`` keyword and charge the counter per entry it
        consumes -- so results and per-query counts are identical to the
        scalar loop.  The sweep's measured wall-clock is split evenly
        across the per-query stats, like the exhaustive bulk path.
        """
        started = time.perf_counter()
        cache = self._counter.precompute(queries, pivot_items)
        sweep_share = (time.perf_counter() - started) / len(queries)
        out: List[Tuple[List[SearchResult], SearchStats]] = []
        for qi, query in enumerate(queries):
            self._counter.take()
            q_started = time.perf_counter()
            results = self._search(query, k, pivot_cache=cache[qi])
            elapsed = time.perf_counter() - q_started + sweep_share
            out.append(
                (
                    results,
                    SearchStats(
                        distance_computations=self._counter.take(),
                        elapsed_seconds=elapsed,
                    ),
                )
            )
        return out
