"""Metric nearest-neighbour search structures.

LAESA (:class:`LaesaIndex`) is the algorithm the paper benchmarks in
Figures 3 and 4; :class:`ExhaustiveIndex` is the Table 2 baseline;
:class:`AesaIndex`, :class:`BKTreeIndex` and :class:`VPTreeIndex` cover the
"other methods that also use the metric properties" the paper alludes to.
Every index reports per-query :class:`SearchStats` (distance computations
and wall-clock time), which is the currency of the paper's evaluation.
"""

from .aesa import AesaIndex
from .base import CountingDistance, NearestNeighborIndex, SearchResult, SearchStats
from .bktree import BKTreeIndex
from .exhaustive import ExhaustiveIndex
from .laesa import LaesaIndex
from .pivots import PIVOT_STRATEGIES, select_pivots, select_pivots_from_matrix
from .vptree import VPTreeIndex

__all__ = [
    "NearestNeighborIndex",
    "SearchResult",
    "SearchStats",
    "CountingDistance",
    "ExhaustiveIndex",
    "LaesaIndex",
    "AesaIndex",
    "BKTreeIndex",
    "VPTreeIndex",
    "select_pivots",
    "select_pivots_from_matrix",
    "PIVOT_STRATEGIES",
]
