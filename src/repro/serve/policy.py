"""Deadline and backpressure policy for the serving tier.

Three decisions live here, pulled out of the server so they are
unit-testable without an event loop:

* **Deadlines** are absolute ``time.monotonic()`` instants computed at
  admission and carried with the request; "how long is left" is always
  derived from the same clock, so a deadline means the same thing to the
  submitting client, the batch assembler, and the fan-out.
* **The circuit breaker** watches batch health (did the bulk call
  degrade down the engine's reliability ladder?) and trips after a
  configurable run of consecutive degraded batches; any clean batch
  resets it.
* **Effective limits** -- while the breaker is tripped, the coalescing
  window halves (smaller batches = less work at risk behind a sick
  runtime) and the admission bound halves (shed earlier, recover
  sooner).  Both snap back the moment the breaker closes.
"""

from __future__ import annotations

import time
from typing import Optional

__all__ = [
    "ServeError",
    "DeadlineExceeded",
    "ServerOverloaded",
    "ServerClosed",
    "compute_deadline",
    "remaining_seconds",
    "CircuitBreaker",
    "effective_window_ms",
    "effective_queue_max",
]


class ServeError(RuntimeError):
    """Base class of every serving-tier failure."""


class DeadlineExceeded(ServeError):
    """The request could not finish inside its deadline.  The request
    was *not* silently dropped: its batch still ran (or never started),
    and this failure is the loud receipt."""


class ServerOverloaded(ServeError):
    """The bounded admission queue is full (or the breaker shrank it);
    the request was shed at the door instead of growing memory."""


class ServerClosed(ServeError):
    """The server is draining or drained; no new work is accepted."""


def compute_deadline(
    timeout_ms: Optional[float],
    default_ms: Optional[float],
    now: Optional[float] = None,
) -> Optional[float]:
    """The absolute monotonic deadline of a request submitted *now* with
    an explicit *timeout_ms* (falling back to the config's *default_ms*);
    ``None`` when neither applies -- the request waits indefinitely."""
    chosen = timeout_ms if timeout_ms is not None else default_ms
    if chosen is None:
        return None
    if now is None:
        now = time.monotonic()
    return now + chosen / 1000.0


def remaining_seconds(deadline: Optional[float], now: Optional[float] = None) -> Optional[float]:
    """Seconds left before *deadline* (clamped at 0), or ``None`` for
    deadline-less requests."""
    if deadline is None:
        return None
    if now is None:
        now = time.monotonic()
    return max(0.0, deadline - now)


class CircuitBreaker:
    """Trip after *threshold* consecutive degraded batches.

    The engine already degrades gracefully (retry -> per-call pool ->
    serial) and keeps answers bit-identical, so a degraded batch is not
    an error -- but a *run* of them means the runtime is sick and every
    oversized batch queues more latency behind it.  While tripped, the
    server halves its window and admission bound; one clean batch
    closes the breaker and restores both.
    """

    def __init__(self, threshold: int) -> None:
        if threshold < 1:
            raise ValueError(f"threshold must be >= 1, got {threshold}")
        self._threshold = threshold
        self._consecutive = 0
        self.trips = 0

    @property
    def tripped(self) -> bool:
        return self._consecutive >= self._threshold

    @property
    def consecutive_degraded(self) -> int:
        return self._consecutive

    def record_batch(self, degraded: bool) -> bool:
        """Feed one batch outcome; returns ``True`` when this batch is
        the one that tripped the breaker (for metrics)."""
        if not degraded:
            self._consecutive = 0
            return False
        was_tripped = self.tripped
        self._consecutive += 1
        just_tripped = self.tripped and not was_tripped
        if just_tripped:
            self.trips += 1
        return just_tripped


def effective_window_ms(window_ms: float, breaker: CircuitBreaker) -> float:
    """The coalescing window under current breaker state."""
    return window_ms / 2.0 if breaker.tripped else window_ms


def effective_queue_max(queue_max: int, breaker: CircuitBreaker) -> int:
    """The admission bound under current breaker state (never below 1:
    a tripped server still serves, it just sheds sooner)."""
    return max(1, queue_max // 2) if breaker.tripped else queue_max
