"""The asyncio index server: coalescing front-end over one index.

:class:`IndexServer` turns any :class:`~repro.index.base.NearestNeighborIndex`
into a resilient concurrent service.  Clients ``await server.knn(...)``
or ``await server.range_search(...)`` one query at a time; internally a
single batcher loop coalesces whatever arrives within the configured
window into homogeneous groups and runs each group as **one**
``bulk_knn`` / ``bulk_range_search`` call on a worker thread, fanning
the per-query results back to their futures.  Every answer is
bit-identical to a direct bulk (equivalently, scalar) call on the same
index -- coalescing is invisible except in latency.

Robustness contract (the chaos suite in ``tests/serve/`` enforces it):

* **Deadlines end-to-end.**  A request carries an absolute deadline from
  admission; the waiter enforces it with ``asyncio.wait_for`` so even a
  wedged batch cannot hold a client past its deadline, and the batch
  assembler fails already-expired requests without running them.  A late
  request gets :class:`~repro.serve.policy.DeadlineExceeded` -- loudly,
  never a silent drop -- and never poisons its batch: the batch still
  runs for the requests that can make it.
* **Bounded admission.**  At most ``queue_max`` accepted-but-unanswered
  requests exist at any instant; beyond that, submissions fail fast with
  :class:`~repro.serve.policy.ServerOverloaded` (the ``shed`` counter
  receipts it).  Memory is bounded no matter how hard clients push.
* **Circuit breaker.**  After ``breaker_after`` consecutive degraded
  batches (the engine's ladder reported pool trouble), the window and
  the admission bound halve -- smaller batches, earlier shedding --
  until a clean batch closes the breaker.
* **Warm start.**  :meth:`IndexServer.warm_start` builds the index
  through :func:`repro.store.load_or_build` with ``save_on_miss=True``,
  so a restarted server loads artifacts instead of recomputing, and the
  first-ever start leaves artifacts behind.
* **Graceful drain.**  :meth:`drain` stops admission, flushes every
  queued request (no window waits), awaits in-flight batches, and
  disposes the engine runtime (configurable).
"""

from __future__ import annotations

import asyncio
import time
from collections import deque
from typing import (
    Any,
    Deque,
    Dict,
    List,
    Optional,
    Sequence,
    Set,
    Type,
    TypeVar,
)

from ..batch import faults
from ..batch.runtime import get_runtime
from ..index.base import NearestNeighborIndex
from .batcher import PendingRequest, QueryResult, take_groups
from .config import ServeConfig
from .metrics import ServeMetrics
from .policy import (
    CircuitBreaker,
    DeadlineExceeded,
    ServeError,
    ServerClosed,
    ServerOverloaded,
    compute_deadline,
    effective_queue_max,
    effective_window_ms,
    remaining_seconds,
)

__all__ = ["IndexServer"]

IndexT = TypeVar("IndexT", bound="NearestNeighborIndex[Any]")


class IndexServer:
    """Coalescing async front-end over *index*.

    One instance owns one index and one batcher loop; use it as an async
    context manager (``async with IndexServer(index) as server:``) or
    pair :meth:`start` with :meth:`drain` explicitly.  All coroutine
    methods must be called from one event loop; the bulk calls
    themselves run on worker threads via ``asyncio.to_thread``.
    """

    def __init__(
        self,
        index: "NearestNeighborIndex[Any]",
        config: Optional[ServeConfig] = None,
    ) -> None:
        self._index = index
        self._config = config if config is not None else ServeConfig.from_env()
        self.metrics = ServeMetrics()
        self.breaker = CircuitBreaker(self._config.breaker_after)
        self._queue: Deque[PendingRequest] = deque()
        self._wake = asyncio.Event()
        self._flush = asyncio.Event()
        self._loop_task: Optional["asyncio.Task[None]"] = None
        self._inflight: Set["asyncio.Task[None]"] = set()
        self._sem: Optional[asyncio.Semaphore] = None
        self._pending = 0
        self._closing = False
        self._started = False

    # -- lifecycle ---------------------------------------------------------

    @classmethod
    def warm_start(
        cls,
        index_cls: Type[IndexT],
        items: Sequence[Any],
        distance: Any,
        store: Any,
        *,
        config: Optional[ServeConfig] = None,
        **params: Any,
    ) -> "IndexServer":
        """A server over *index_cls* loaded from *store* (or built once
        and saved there), so restarts answer their first query without
        recomputing a single distance."""
        from ..store import load_or_build

        index = load_or_build(
            index_cls, items, distance, store, params, save_on_miss=True
        )
        return cls(index, config=config)

    @property
    def index(self) -> "NearestNeighborIndex[Any]":
        return self._index

    @property
    def config(self) -> ServeConfig:
        return self._config

    async def start(self) -> "IndexServer":
        """Start the batcher loop (idempotent; re-opens after a drain)."""
        if self._started:
            return self
        self._started = True
        self._closing = False
        self._sem = asyncio.Semaphore(self._config.max_inflight)
        self._loop_task = asyncio.create_task(self._run())
        return self

    async def drain(self, timeout: Optional[float] = None) -> None:
        """Graceful shutdown: refuse new work, flush every queued
        request (skipping window waits), await in-flight batches (up to
        *timeout* seconds, ``None`` = forever), then dispose the engine
        runtime when the config says the server owns it."""
        self._closing = True
        self._wake.set()
        self._flush.set()
        if self._loop_task is not None:
            await self._loop_task
            self._loop_task = None
        if self._inflight:
            await asyncio.wait(set(self._inflight), timeout=timeout)
        self._started = False
        if self._config.dispose_runtime_on_drain:
            await asyncio.to_thread(get_runtime().shutdown)

    async def __aenter__(self) -> "IndexServer":
        return await self.start()

    async def __aexit__(self, *exc_info: Any) -> None:
        await self.drain()

    # -- client surface ----------------------------------------------------

    async def knn(
        self, query: Any, k: int, *, timeout_ms: Optional[float] = None
    ) -> QueryResult:
        """k nearest neighbours of *query* -- the ``(results, stats)``
        tuple a direct ``index.knn`` / ``bulk_knn`` call would return,
        bit-identical."""
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        return await self._submit("knn", float(k), query, timeout_ms)

    async def range_search(
        self, query: Any, radius: float, *, timeout_ms: Optional[float] = None
    ) -> QueryResult:
        """All items within *radius* of *query*, closest first --
        bit-identical to a direct ``bulk_range_search``."""
        if radius < 0:
            raise ValueError(f"radius must be >= 0, got {radius}")
        return await self._submit("range", float(radius), query, timeout_ms)

    def health(self) -> Dict[str, Any]:
        """Point-in-time health surface: server counters, the
        degradation delta since the previous ``health()`` call, breaker
        state, and current effective limits."""
        return {
            "counters": self.metrics.snapshot(),
            "degradation_interval": self.metrics.degradation_interval(),
            "breaker": {
                "tripped": self.breaker.tripped,
                "trips": self.breaker.trips,
                "consecutive_degraded": self.breaker.consecutive_degraded,
            },
            "effective_window_ms": effective_window_ms(
                self._config.window_ms, self.breaker
            ),
            "effective_queue_max": effective_queue_max(
                self._config.queue_max, self.breaker
            ),
            "pending": self._pending,
            "queue_depth": len(self._queue),
            "closing": self._closing,
        }

    # -- submission path ---------------------------------------------------

    async def _submit(
        self, kind: str, param: float, query: Any, timeout_ms: Optional[float]
    ) -> QueryResult:
        if self._closing:
            raise ServerClosed("server is draining; submit refused")
        if not self._started:
            await self.start()
        if self._closing:  # drained while start() yielded
            raise ServerClosed("server is draining; submit refused")
        self.metrics.record("submitted")
        bound = effective_queue_max(self._config.queue_max, self.breaker)
        if self._pending >= bound or faults.fires("serve_shed"):
            self.metrics.record("shed")
            raise ServerOverloaded(
                f"admission queue full ({self._pending}/{bound} pending); "
                "request shed"
            )
        now = time.monotonic()
        deadline = compute_deadline(
            timeout_ms, self._config.default_deadline_ms, now
        )
        loop = asyncio.get_running_loop()
        future: "asyncio.Future[QueryResult]" = loop.create_future()
        self._pending += 1
        future.add_done_callback(self._on_request_done)
        self._queue.append(
            PendingRequest(kind, param, query, deadline, future, now)
        )
        self._wake.set()
        if len(self._queue) >= self._config.max_batch:
            self._flush.set()  # a full batch need not wait out the window
        try:
            if deadline is None:
                result = await future
            else:
                budget = remaining_seconds(deadline)
                assert budget is not None
                result = await asyncio.wait_for(future, budget)
        except asyncio.TimeoutError:
            self.metrics.record("deadline_exceeded")
            raise DeadlineExceeded(
                f"{kind} request missed its deadline after "
                f"{(timeout_ms if timeout_ms is not None else self._config.default_deadline_ms)}ms"
            ) from None
        except DeadlineExceeded:
            self.metrics.record("deadline_exceeded")
            raise
        except ServeError:
            self.metrics.record("failed")
            raise
        else:
            self.metrics.record("completed")
            return result

    def _on_request_done(self, future: "asyncio.Future[QueryResult]") -> None:
        self._pending -= 1

    # -- batcher loop ------------------------------------------------------

    async def _run(self) -> None:
        while True:
            if not self._queue:
                if self._closing:
                    return
                self._wake.clear()
                if self._queue:  # appended between the check and clear
                    continue
                if self._closing:
                    return
                await self._wake.wait()
                continue
            window = effective_window_ms(self._config.window_ms, self.breaker)
            if (
                window > 0
                and not self._closing
                and len(self._queue) < self._config.max_batch
            ):
                # An interruptible window: a drain (or a queue reaching
                # max_batch) sets the flush event and cuts it short.
                self._flush.clear()
                try:
                    await asyncio.wait_for(
                        self._flush.wait(), window / 1000.0
                    )
                except asyncio.TimeoutError:
                    pass
            for group in take_groups(self._queue, self._config.max_batch):
                task = asyncio.create_task(self._run_batch(group))
                self._inflight.add(task)
                task.add_done_callback(self._inflight.discard)

    async def _run_batch(self, group: List[PendingRequest]) -> None:
        assert self._sem is not None
        async with self._sem:
            now = time.monotonic()
            live: List[PendingRequest] = []
            for req in group:
                if req.future.done():
                    continue  # waiter already timed out or was cancelled
                expired = req.deadline is not None and now >= req.deadline
                if expired or faults.fires("serve_deadline"):
                    req.future.set_exception(
                        DeadlineExceeded(
                            f"{req.kind} request expired before its batch ran"
                        )
                    )
                    continue
                live.append(req)
            if not live:
                return
            kind, param = live[0].kind, live[0].param
            queries = [req.query for req in live]
            self.metrics.record("batches")
            self.metrics.record("batched_requests", len(live))
            try:
                results = await asyncio.to_thread(
                    self._execute, kind, queries, param
                )
            except asyncio.CancelledError:
                # Only event-loop teardown cancels batch tasks; receipts
                # before re-raising so no waiter hangs on a dead batch.
                for req in live:
                    if not req.future.done():
                        req.future.set_exception(
                            ServerClosed("batch cancelled at shutdown")
                        )
                raise
            except Exception as exc:
                # The engine ladder absorbs runtime faults; reaching here
                # means something unexpected (bad parameter for this
                # corpus, kernel bug).  Fail the whole group loudly --
                # every member shares the same (kind, param).
                self.metrics.record("degraded_batches")
                if self.breaker.record_batch(True):
                    self.metrics.record("breaker_trips")
                failure = ServeError(f"batch execution failed: {exc!r}")
                failure.__cause__ = exc
                for req in live:
                    if not req.future.done():
                        req.future.set_exception(failure)
                return
            degraded = bool(self._index.last_degradation)
            if degraded:
                self.metrics.record("degraded_batches")
            if self.breaker.record_batch(degraded):
                self.metrics.record("breaker_trips")
            now = time.monotonic()
            for req, outcome in zip(live, results):
                if req.future.done():
                    continue
                if req.deadline is not None and now >= req.deadline:
                    req.future.set_exception(
                        DeadlineExceeded(
                            f"{req.kind} request finished after its deadline"
                        )
                    )
                    continue
                req.future.set_result(outcome)

    def _execute(
        self, kind: str, queries: List[Any], param: float
    ) -> List[QueryResult]:
        """One coalesced bulk call (worker thread)."""
        plan = faults.active_plan()
        if plan is not None and plan.should_fire("serve_slow_batch"):
            spec = plan.spec("serve_slow_batch")
            if spec is not None:
                time.sleep(spec.sleep_seconds)
        if kind == "knn":
            return self._index.bulk_knn(queries, int(param))
        return self._index.bulk_range_search(queries, param)
