"""Request coalescing: the queue entries and grouping rules.

The server drains its admission queue once per window and hands the
drained requests to :func:`take_groups`, which packs them into
*homogeneous* groups -- same operation, same parameter -- because one
``bulk_knn`` call carries one ``k`` and one ``bulk_range_search`` one
radius.  Grouping is pure bookkeeping: the lockstep bulk drivers are
bit-identical to per-query scalar loops, and a scalar loop is trivially
independent of how queries are batched around it, so *any* grouping
returns exactly what a direct call would have.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Optional, Tuple

from ..index.base import SearchResult, SearchStats

__all__ = ["QueryResult", "PendingRequest", "take_groups"]

#: What one served query resolves to -- exactly the per-query tuple of
#: the bulk drivers, so callers cannot tell coalescing happened.
QueryResult = Tuple[List[SearchResult], SearchStats]


@dataclass
class PendingRequest:
    """One admitted query waiting for (or riding in) a batch."""

    kind: str  # "knn" | "range"
    param: float  # k (integral) or radius
    query: Any
    deadline: Optional[float]  # absolute time.monotonic() instant, or None
    future: "asyncio.Future[QueryResult]" = field(compare=False)
    enqueued: float = 0.0  # time.monotonic() at admission

    @property
    def group_key(self) -> Tuple[str, float]:
        return (self.kind, self.param)


def take_groups(
    queue: "Deque[PendingRequest]", max_batch: int
) -> List[List[PendingRequest]]:
    """Drain up to *max_batch* requests FIFO and pack them into
    homogeneous ``(kind, param)`` groups, preserving arrival order both
    across and within groups.  Each group becomes one bulk call."""
    groups: Dict[Tuple[str, float], List[PendingRequest]] = {}
    order: List[Tuple[str, float]] = []
    taken = 0
    while queue and taken < max_batch:
        req = queue.popleft()
        taken += 1
        key = req.group_key
        if key not in groups:
            groups[key] = []
            order.append(key)
        groups[key].append(req)
    return [groups[key] for key in order]
