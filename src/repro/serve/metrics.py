"""The serving tier's health and metrics surface.

:class:`ServeMetrics` mirrors the engine's
:class:`~repro.batch.runtime.DegradationStats` discipline: a small fixed
set of named counters behind one lock, cheap point-in-time snapshots,
and *interval* reporting for the process-wide degradation counters --
each :meth:`degradation_interval` call returns what degraded since the
previous one without ever racing (or double/zero-counting against)
in-flight bulk calls, because both the delta and the new baseline come
from the same consistent snapshot.

Counting discipline: terminal per-request outcomes (``completed``,
``deadline_exceeded``, ``failed``, ``shed``) are recorded exactly once,
by the submission path that raises or returns to the client -- the
batch side only accounts batch-shaped facts (``batches``,
``batched_requests``, ``degraded_batches``, ``breaker_trips``).  The
invariant ``submitted == completed + shed + deadline_exceeded + failed``
therefore holds whenever no request is in flight.
"""

from __future__ import annotations

import threading
from typing import Dict

from ..batch.runtime import DEGRADATION, DegradationSnapshot

__all__ = ["ServeMetrics"]


class ServeMetrics:
    """Process-local counters of one server instance."""

    _FIELDS = (
        "submitted",  # requests that passed the closed-server check
        "completed",  # requests answered with results
        "shed",  # requests refused at admission (ServerOverloaded)
        "deadline_exceeded",  # requests failed on their deadline
        "failed",  # requests failed by a batch execution error
        "batches",  # coalesced bulk calls dispatched
        "batched_requests",  # live requests carried by those calls
        "degraded_batches",  # bulk calls that degraded down the ladder
        "breaker_trips",  # times the circuit breaker opened
    )

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counts: Dict[str, int] = {f: 0 for f in self._FIELDS}
        self._baseline: DegradationSnapshot = DEGRADATION.snapshot()

    def record(self, event: str, n: int = 1) -> None:
        with self._lock:
            self._counts[event] = self._counts.get(event, 0) + n

    def snapshot(self) -> Dict[str, int]:
        with self._lock:
            return dict(self._counts)

    def reset(self) -> None:
        with self._lock:
            for key in list(self._counts):
                self._counts[key] = 0

    def degradation_interval(self, *, rebase: bool = True) -> Dict[str, int]:
        """Non-zero process-wide degradation counter increases since the
        previous interval (or construction), from one consistent
        snapshot.  With ``rebase=True`` (the default, statsd-flush
        semantics) the baseline advances to that same snapshot, so
        consecutive intervals partition events losslessly;
        ``rebase=False`` peeks without consuming."""
        after = DEGRADATION.snapshot()
        with self._lock:
            before = self._baseline
            if rebase:
                self._baseline = after
        delta: Dict[str, int] = {}
        for key, value in after.items():
            diff = value - before.get(key, 0)
            if diff > 0:
                delta[key] = diff
        return delta
