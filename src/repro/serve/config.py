"""Configuration for the serving tier.

Every deployment knob of :mod:`repro.serve` is an environment variable
declared in the :mod:`repro.tools.knobs` registry (``REPRO_SERVE_*``),
read once when a :class:`ServeConfig` is materialised -- a running
server never re-reads the environment, so its behaviour cannot drift
mid-traffic.  Tests and embedders construct :class:`ServeConfig`
directly and bypass the environment entirely.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..tools import knobs

__all__ = ["ServeConfig"]

#: Default coalescing window in milliseconds: long enough to merge a
#: burst of concurrent arrivals, short enough to be invisible next to a
#: bulk sweep.
_DEFAULT_WINDOW_MS = 2.0

#: Default cap on requests per coalesced bulk call.
_DEFAULT_MAX_BATCH = 64

#: Default bounded-admission limit (outstanding accepted requests).
_DEFAULT_QUEUE_MAX = 1024

#: Default consecutive degraded batches before the breaker trips.
_DEFAULT_BREAKER_AFTER = 3

#: Default concurrently executing batches (1 = serialised index access,
#: which keeps per-batch degradation attribution exact).
_DEFAULT_MAX_INFLIGHT = 1


@dataclass(frozen=True)
class ServeConfig:
    """Immutable knobs of one :class:`~repro.serve.server.IndexServer`.

    ``default_deadline_ms`` applies to requests submitted without an
    explicit ``timeout_ms``; ``None`` means such requests wait
    indefinitely.  ``dispose_runtime_on_drain`` controls whether a
    graceful drain also shuts down the process-wide engine runtime
    (persistent pool + shared-memory segments) -- embedders sharing the
    runtime with other work set it ``False``.
    """

    window_ms: float = _DEFAULT_WINDOW_MS
    max_batch: int = _DEFAULT_MAX_BATCH
    queue_max: int = _DEFAULT_QUEUE_MAX
    default_deadline_ms: Optional[float] = None
    breaker_after: int = _DEFAULT_BREAKER_AFTER
    max_inflight: int = _DEFAULT_MAX_INFLIGHT
    dispose_runtime_on_drain: bool = True

    def __post_init__(self) -> None:
        if self.window_ms < 0:
            raise ValueError(f"window_ms must be >= 0, got {self.window_ms}")
        for name in ("max_batch", "queue_max", "breaker_after", "max_inflight"):
            value = int(getattr(self, name))
            if value < 1:
                raise ValueError(f"{name} must be >= 1, got {value}")
        if self.default_deadline_ms is not None and self.default_deadline_ms <= 0:
            raise ValueError(
                f"default_deadline_ms must be > 0, got {self.default_deadline_ms}"
            )

    @classmethod
    def from_env(cls) -> "ServeConfig":
        """A config from the ``REPRO_SERVE_*`` environment knobs, with
        out-of-range values clamped to the nearest legal one (a service
        must come up even under a typo'd deployment)."""
        window = knobs.get_float("REPRO_SERVE_WINDOW_MS", _DEFAULT_WINDOW_MS)
        deadline = knobs.get_float("REPRO_SERVE_DEADLINE_MS")
        max_batch = knobs.get_int(
            "REPRO_SERVE_MAX_BATCH", _DEFAULT_MAX_BATCH, minimum=1
        )
        queue_max = knobs.get_int(
            "REPRO_SERVE_QUEUE_MAX", _DEFAULT_QUEUE_MAX, minimum=1
        )
        breaker_after = knobs.get_int(
            "REPRO_SERVE_BREAKER_AFTER", _DEFAULT_BREAKER_AFTER, minimum=1
        )
        max_inflight = knobs.get_int(
            "REPRO_SERVE_MAX_INFLIGHT", _DEFAULT_MAX_INFLIGHT, minimum=1
        )
        return cls(
            window_ms=max(0.0, window if window is not None else _DEFAULT_WINDOW_MS),
            max_batch=max_batch if max_batch is not None else _DEFAULT_MAX_BATCH,
            queue_max=queue_max if queue_max is not None else _DEFAULT_QUEUE_MAX,
            default_deadline_ms=(
                deadline if deadline is not None and deadline > 0 else None
            ),
            breaker_after=(
                breaker_after if breaker_after is not None else _DEFAULT_BREAKER_AFTER
            ),
            max_inflight=(
                max_inflight if max_inflight is not None else _DEFAULT_MAX_INFLIGHT
            ),
        )
