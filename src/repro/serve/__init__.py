"""repro.serve -- the resilient serving tier.

An asyncio front-end that turns any index into a concurrent service:
single-query submissions are coalesced within a small window into one
lockstep ``bulk_knn`` / ``bulk_range_search`` call, with per-request
deadlines, bounded admission + load shedding, a degradation-keyed
circuit breaker, warm start from :mod:`repro.store` artifacts, and
graceful drain.  Every served answer is bit-identical to a direct bulk
call on the same index.

Quickstart::

    import asyncio
    from repro.index import LaesaIndex
    from repro.serve import IndexServer, ServeConfig

    async def main() -> None:
        index = LaesaIndex(words, "levenshtein", n_pivots=8)
        async with IndexServer(index, ServeConfig(window_ms=2.0)) as server:
            results, stats = await server.knn("hello", k=3, timeout_ms=250)
            print(server.health())

    asyncio.run(main())
"""

from .batcher import PendingRequest, QueryResult, take_groups
from .config import ServeConfig
from .metrics import ServeMetrics
from .policy import (
    CircuitBreaker,
    DeadlineExceeded,
    ServeError,
    ServerClosed,
    ServerOverloaded,
    compute_deadline,
    effective_queue_max,
    effective_window_ms,
    remaining_seconds,
)
from .server import IndexServer

__all__ = [
    "IndexServer",
    "ServeConfig",
    "ServeMetrics",
    "CircuitBreaker",
    "ServeError",
    "DeadlineExceeded",
    "ServerOverloaded",
    "ServerClosed",
    "PendingRequest",
    "QueryResult",
    "take_groups",
    "compute_deadline",
    "remaining_seconds",
    "effective_window_ms",
    "effective_queue_max",
]
