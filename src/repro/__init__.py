"""repro -- a full reproduction of "A Contextual Normalised Edit Distance"
(Colin de la Higuera & Luisa Micó, ICDE 2008).

The package provides:

* :mod:`repro.core` -- the contextual normalised edit distance ``d_C``
  (exact Algorithm 1 and the quadratic heuristic ``d_C,h``) together with
  every distance the paper compares against (``d_E``, ``d_MV``, ``d_YB``,
  and the non-metric ratios ``d_sum``/``d_max``/``d_min``);
* :mod:`repro.batch` -- the pair-batched distance engine: many pairs per
  numpy dispatch (:func:`repro.batch.pairwise_matrix`), with dedupe,
  symmetry exploitation and optional process-pool fan-out;
* :mod:`repro.index` -- metric nearest-neighbour search structures (LAESA,
  AESA, BK-tree, VP-tree, exhaustive scan) with distance-computation
  accounting and early-exit (bounded) distance evaluation;
* :mod:`repro.datasets` -- deterministic synthetic stand-ins for the
  paper's three datasets (Spanish dictionary, Listeria genes, NIST digit
  contour chain codes) plus the ``genqueries``-style perturbation tool;
* :mod:`repro.analysis` -- distance histograms, Chávez intrinsic
  dimensionality, exact-vs-heuristic agreement statistics, ASCII plots;
* :mod:`repro.classify` -- 1-NN classification with the paper's
  repeated-trial protocol;
* :mod:`repro.experiments` -- one runnable module per table and figure
  (``python -m repro.experiments --list``).

Quickstart::

    >>> from repro import contextual_distance, contextual_distance_heuristic
    >>> round(contextual_distance("ababa", "baab"), 4)
    0.5333
    >>> contextual_distance_heuristic("hello", "hello")
    0.0
"""

from .batch import (
    distances_from,
    pairwise_matrix,
    pairwise_matrix_blocks,
    pairwise_matrix_memmap,
    pairwise_values,
)
from .core import (
    CostModel,
    DistanceFunction,
    EditOp,
    EditPath,
    MetricReport,
    PAPER_ALL,
    PAPER_NORMALISED,
    alignment,
    canonical_cost,
    check_metric,
    contextual_distance,
    contextual_distance_heuristic,
    contextual_profile,
    edit_script,
    get_distance,
    get_spec,
    levenshtein_bounded,
    levenshtein_distance,
    list_distances,
    max_normalized_distance,
    min_normalized_distance,
    mv_normalized_distance,
    sum_normalized_distance,
    yb_normalized_distance,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "contextual_distance",
    "contextual_distance_heuristic",
    "contextual_profile",
    "canonical_cost",
    "levenshtein_distance",
    "levenshtein_bounded",
    "pairwise_values",
    "pairwise_matrix",
    "pairwise_matrix_blocks",
    "pairwise_matrix_memmap",
    "distances_from",
    "mv_normalized_distance",
    "yb_normalized_distance",
    "max_normalized_distance",
    "min_normalized_distance",
    "sum_normalized_distance",
    "alignment",
    "edit_script",
    "EditOp",
    "EditPath",
    "CostModel",
    "MetricReport",
    "check_metric",
    "get_distance",
    "get_spec",
    "list_distances",
    "DistanceFunction",
    "PAPER_ALL",
    "PAPER_NORMALISED",
]
